"""The unified attack-session engine.

Every workload in this repository — experiment runner, parameter sweeps,
benchmarks, the perf report and the examples — is ultimately the same loop:
an adversary makes a move, the healer repairs, and the Theorem 1 quantities
are measured incrementally at some cadence.  :class:`AttackSession` owns that
loop once, so there is exactly one audited, fast path from an attack
description to measured guarantees:

* the *moves* come from an :class:`repro.adversary.AttackSchedule` consumed
  through its streaming :meth:`~repro.adversary.AttackSchedule.play`
  generator (one adversarial move per ``next()``),
* the *measurements* reuse one
  :class:`repro.analysis.MeasurementSession` across the whole attack, so the
  CSR node indexing is translated once and only extended as nodes appear,
* the *results* stream out as typed :class:`StepEvent` objects, so consumers
  can report incrementally (JSONL rows, live tables) or stop early without
  owning any stepping logic themselves.

Typical usage::

    from repro.engine import AttackSession
    from repro.adversary import churn_schedule

    session = AttackSession(healer, churn_schedule(steps=500, seed=7))
    for event in session.stream():          # streaming consumption
        if event.report is not None:
            print(event.step, event.report.stretch)
    result = session.result                 # peaks, final report, wall clock

or, when only the summary matters::

    result = AttackSession(healer, schedule).run()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .adversary.schedule import AttackSchedule
from .analysis.fastpaths import MeasurementSession
from .analysis.invariants import GuaranteeReport, guarantee_report
from .core.ports import NodeId

__all__ = ["AttackSession", "SessionResult", "StepEvent"]

SeedLike = Union[int, np.random.Generator, None]


@dataclass
class StepEvent:
    """One adversarial move, after repair, as seen by session consumers."""

    step: int
    kind: str  # "insert" | "delete" | "burst_delete"
    node: NodeId
    #: Attachment points for insertions, empty for deletions.
    attached_to: Tuple[NodeId, ...]
    #: Degree of the victim in ``G'`` at deletion time (deletions only; the
    #: burst maximum for ``burst_delete``).
    victim_degree: int
    #: Cumulative move counters up to and including this step.
    deletions: int
    insertions: int
    #: The measurement taken after this move, when the session's cadence hit
    #: (``None`` for the steps in between).
    report: Optional[GuaranteeReport] = None
    #: Communication cost of this deletion's repair, when the healer accounts
    #: for it (the distributed healer's ``DeletionCostReport``; ``None`` for
    #: insertions and for healers without message accounting).  When the
    #: deletion ran under a fault schedule the report's ``recovery`` field
    #: carries the full gossip-digest ``RecoveryCostReport`` ledger, so
    #: stream consumers see digest/retransmission costs per move.  For a
    #: ``burst_delete`` this is the *first* victim's report; the full set is
    #: in ``cost_reports``.
    cost_report: Optional[object] = None
    #: Every victim of a ``burst_delete`` move (empty for single moves).
    victims: Tuple[NodeId, ...] = ()
    #: One ``DeletionCostReport`` per burst victim, in deletion order, when
    #: the healer accounts for repairs (empty otherwise).
    cost_reports: Tuple[object, ...] = ()


@dataclass
class SessionResult:
    """Summary of one completed attack session."""

    healer_name: str
    #: Theorem 1 compliance snapshot at the end of the attack (``None`` only
    #: when the session was created with ``measure_final=False``).
    final_report: Optional[GuaranteeReport]
    #: Worst values observed at *any* measurement point (the theorems are
    #: "at any time" statements, so the peak matters).
    peak_degree_factor: float
    peak_stretch: float
    deletions: int
    insertions: int
    steps: int
    wall_clock_seconds: float
    #: Per-measurement time series (kept only when ``track_series`` was set).
    series: List[Dict[str, float]] = field(default_factory=list)


class AttackSession:
    """Drive one healer through one attack schedule with periodic measurement.

    Parameters
    ----------
    healer:
        Anything satisfying the healer protocol (``ForgivingGraph`` or a
        baseline).
    schedule:
        The attack to play.
    healer_name:
        Label used in reports; defaults to the healer's class name.
    stretch_sources:
        BFS-source cap for the stretch measurement (None = exact).
    seed:
        Seed for the sampled-stretch source choice.
    measure_every:
        Measurement cadence in adversarial moves.  ``None`` (default) picks
        the automatic coarse interval ``max(steps // 8, 1)``; ``0`` disables
        periodic measurement entirely (consumers that measure themselves,
        e.g. the perf report's seed-emulation side); any positive value is
        used as-is.
    measure_final:
        Take a final measurement when the schedule is exhausted (on by
        default; the final report is required for :attr:`SessionResult`).
    track_series:
        Keep a per-measurement time series in the result.
    cross_check_every:
        Oracle cross-check cadence, counted in *measurements*: every
        ``k``-th measurement tick additionally calls the healer's
        ``verify_consistency()`` (the distributed healer's O(n + m)
        oracle diff).  ``None`` (default) never cross-checks — the
        cadence-gated replacement for wiring ``verify_consistency`` into
        every repair, so large-n sessions pay the O(n + m) audit only on
        the measurement cadence they opted into; ``1`` checks at every
        measurement.  Healers without ``verify_consistency`` ignore the
        setting.
    """

    def __init__(
        self,
        healer,
        schedule: AttackSchedule,
        *,
        healer_name: Optional[str] = None,
        stretch_sources: Optional[int] = 48,
        seed: SeedLike = 0,
        measure_every: Optional[int] = None,
        measure_final: bool = True,
        track_series: bool = False,
        cross_check_every: Optional[int] = None,
    ) -> None:
        self.healer = healer
        self.schedule = schedule
        self.healer_name = (
            healer_name if healer_name is not None else getattr(healer, "name", type(healer).__name__)
        )
        self.stretch_sources = stretch_sources
        self.seed = seed
        if measure_every is None:
            self.interval = max(schedule.steps // 8, 1)
        else:
            self.interval = int(measure_every)
        self.measure_final = measure_final
        self.track_series = track_series
        self.cross_check_every = (
            None if cross_check_every is None else int(cross_check_every)
        )
        #: Measurement ticks taken so far (the cross-check cadence counter).
        self._measurements = 0
        #: Oracle cross-checks actually performed (inspectable by tests).
        self.cross_checks_run = 0
        #: One measurement session per attack: the CSR node indexing is built
        #: once and only extended as the adversary inserts nodes.
        self.measurement = MeasurementSession()
        self._peak_degree = 0.0
        self._peak_stretch = 0.0
        self._series: List[Dict[str, float]] = []
        self._deletions = 0
        self._insertions = 0
        self._steps = 0
        self._started = False
        self._start_time: Optional[float] = None
        self._result: Optional[SessionResult] = None

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def measure_now(self, step: Optional[int] = None) -> GuaranteeReport:
        """Measure the Theorem 1 quantities right now and fold them into the peaks."""
        report = guarantee_report(
            self.healer,
            max_sources=self.stretch_sources,
            seed=self.seed,
            healer_name=self.healer_name,
            session=self.measurement,
        )
        self.compact_journals()
        self._measurements += 1
        every = self.cross_check_every
        if every is not None and every > 0 and self._measurements % every == 0:
            # The opt-in oracle audit rides the measurement cadence: healers
            # exposing ``verify_consistency`` (the distributed simulator's
            # O(n + m) oracle diff) get cross-checked here instead of once
            # per repair, so the audit cost scales with measurements taken,
            # not with churn volume.
            verify = getattr(self.healer, "verify_consistency", None)
            if verify is not None:
                verify()
                self.cross_checks_run += 1
        self._peak_degree = max(self._peak_degree, report.degree_factor)
        self._peak_stretch = max(self._peak_stretch, report.stretch)
        if self.track_series:
            self._series.append(
                {
                    "step": self._steps if step is None else step,
                    "alive": report.alive,
                    "degree_factor": report.degree_factor,
                    "stretch": report.stretch,
                    "stretch_bound": report.stretch_bound,
                }
            )
        return report

    # ------------------------------------------------------------------ #
    # the step loop
    # ------------------------------------------------------------------ #
    def stream(self) -> Iterator[StepEvent]:
        """Play the attack, yielding one typed event per adversarial move.

        When the schedule is exhausted the final measurement is taken (unless
        disabled) and :attr:`result` becomes available.  The generator can be
        abandoned early; :attr:`result` then stays ``None`` and
        :meth:`finalize` can be called to close the books explicitly.

        A session is single-use: replaying the schedule would mutate the
        already-attacked healer a second time, so streaming again — whether
        the first stream finished or was abandoned — raises.
        """
        if self._started:
            raise RuntimeError(
                "AttackSession is single-use and this one has already streamed; "
                "create a new session to play another attack"
            )
        self._started = True
        self._start_time = start = time.perf_counter()
        for event in self.schedule.play(self.healer):
            self._steps += 1
            if event.kind == "delete":
                self._deletions += 1
            elif event.kind == "burst_delete":
                self._deletions += len(event.victims)
            else:
                self._insertions += 1
            report = None
            if self.interval > 0 and self._steps % self.interval == 0:
                report = self.measure_now(event.step)
            cost_report = None
            cost_reports: Tuple[object, ...] = ()
            if event.kind == "delete":
                # Healers with per-deletion communication accounting (the
                # distributed simulator) append one report per repair; attach
                # the one belonging to this move to its event.
                reports = getattr(self.healer, "cost_reports", None)
                if reports and reports[-1].deleted_node == event.node:
                    cost_report = reports[-1]
            elif event.kind == "burst_delete":
                # A burst appends one report per victim (in admission order,
                # which may differ from sampling order when overlapping
                # footprints serialize into waves); attach the whole tail.
                reports = getattr(self.healer, "cost_reports", None)
                tail = list(reports[-len(event.victims):]) if reports else []
                if {r.deleted_node for r in tail} == set(event.victims):
                    cost_reports = tuple(tail)
                    for candidate in tail:
                        if candidate.deleted_node == event.node:
                            cost_report = candidate
                            break
            yield StepEvent(
                step=event.step,
                kind=event.kind,
                node=event.node,
                attached_to=event.attached_to,
                victim_degree=event.victim_degree,
                deletions=self._deletions,
                insertions=self._insertions,
                report=report,
                cost_report=cost_report,
                victims=event.victims,
                cost_reports=cost_reports,
            )
        self.finalize(start=start)

    def compact_journals(self) -> Dict[str, int]:
        """Compact the healer's incremental journals (degree-touch, edge-delta).

        The journals are append-only per engine and would grow without bound
        over a long session; the session compacts them on its measurement
        cadence, so their retained size stays proportional to the interval
        between measurements, not to the attack length.  Registered consumers
        (the incremental adversaries) pin whatever they have not drained yet;
        healers without journals report nothing.
        """
        compact = getattr(self.healer, "compact_journals", None)
        if compact is None:
            return {}
        return compact()

    def finalize(self, start: Optional[float] = None) -> SessionResult:
        """Take the final measurement (if configured) and freeze the result."""
        if self._result is not None:
            return self._result
        final = self.measure_now() if self.measure_final else None
        self.compact_journals()
        if start is None:
            start = self._start_time  # early-exited stream: real elapsed time
        elapsed = (time.perf_counter() - start) if start is not None else 0.0
        self._result = SessionResult(
            healer_name=self.healer_name,
            final_report=final,
            peak_degree_factor=self._peak_degree,
            peak_stretch=self._peak_stretch,
            deletions=self._deletions,
            insertions=self._insertions,
            steps=self._steps,
            wall_clock_seconds=elapsed,
            series=self._series,
        )
        return self._result

    def run(self) -> SessionResult:
        """Play the whole attack to completion and return the summary."""
        for _ in self.stream():
            pass
        return self.result

    @property
    def result(self) -> Optional[SessionResult]:
        """The frozen summary (``None`` until the stream has been exhausted)."""
        return self._result
