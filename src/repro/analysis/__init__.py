"""Measurement and verification tools for the success metrics of Figure 1.

* :mod:`repro.analysis.degrees` — degree-increase factors (Theorem 1.1),
* :mod:`repro.analysis.stretch` — exact and sampled stretch (Theorem 1.2),
* :mod:`repro.analysis.bounds` — the theoretical upper bounds of Theorem 1
  and the Theorem 2 lower bound,
* :mod:`repro.analysis.invariants` — healer-agnostic health checks
  (connectivity, guarantee compliance),
* :mod:`repro.analysis.fastpaths` — CSR/int-indexed snapshots and the
  numpy/scipy BFS engine behind the measurement hot paths,
* :mod:`repro.analysis.stats` — small summary-statistics helpers used by the
  experiment reports.
"""

from .bounds import (
    degree_bound,
    lower_bound_stretch,
    repair_message_bound,
    repair_time_bound,
    stretch_bound,
    verify_tradeoff_against_lower_bound,
)
from .degrees import DegreeReport, degree_increase_factor, degree_report, per_node_degree_factors
from .fastpaths import (
    CSRGraph,
    HealerSnapshot,
    MeasurementSession,
    NodeIndex,
    snapshot_healer,
)
from .invariants import GuaranteeReport, check_connectivity_preserved, guarantee_report
from .stats import Summary, summarize
from .stretch import StretchReport, pairwise_stretch, stretch_report, stretch_report_reference

__all__ = [
    "degree_increase_factor",
    "per_node_degree_factors",
    "degree_report",
    "DegreeReport",
    "pairwise_stretch",
    "stretch_report",
    "stretch_report_reference",
    "StretchReport",
    "CSRGraph",
    "HealerSnapshot",
    "MeasurementSession",
    "NodeIndex",
    "snapshot_healer",
    "degree_bound",
    "stretch_bound",
    "lower_bound_stretch",
    "repair_message_bound",
    "repair_time_bound",
    "verify_tradeoff_against_lower_bound",
    "check_connectivity_preserved",
    "guarantee_report",
    "GuaranteeReport",
    "Summary",
    "summarize",
]
