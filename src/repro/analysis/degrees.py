"""Degree-increase measurements (Theorem 1.1 / success metric 1 of Figure 1).

The paper's first success metric is ``max_v deg(v, G_T) / deg(v, G'_T)``: how
much healing has inflated any node's degree relative to the insertion-only
graph.  These helpers compute the per-node ratios and the aggregate report
from any healer exposing the shared protocol (``actual_graph`` /
``g_prime_view`` / ``alive_nodes``); degrees are read off zero-copy views
(:mod:`repro.core.views`), so no graph is ever copied per measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


from ..core.ports import NodeId
from ..core.views import healer_views

__all__ = ["per_node_degree_factors", "degree_increase_factor", "degree_report", "DegreeReport"]


def per_node_degree_factors(healer) -> Dict[NodeId, float]:
    """Return ``deg(v, healed) / deg(v, G')`` for every alive node with ``G'`` degree > 0."""
    g_prime, actual = healer_views(healer)
    factors: Dict[NodeId, float] = {}
    for node in healer.alive_nodes:
        d_prime = g_prime.degree[node] if node in g_prime else 0
        if d_prime == 0:
            continue
        d_actual = actual.degree[node] if node in actual else 0
        factors[node] = d_actual / d_prime
    return factors


def degree_increase_factor(healer) -> float:
    """The paper's degree metric: the worst per-node ratio (0.0 for an empty graph)."""
    factors = per_node_degree_factors(healer)
    return max(factors.values()) if factors else 0.0


@dataclass
class DegreeReport:
    """Aggregate degree statistics for one healer state."""

    max_factor: float
    mean_factor: float
    max_actual_degree: int
    max_g_prime_degree: int
    num_nodes: int

    def as_row(self) -> Dict[str, float]:
        """Flatten to a dict for the table reporters."""
        return {
            "degree_factor_max": round(self.max_factor, 4),
            "degree_factor_mean": round(self.mean_factor, 4),
            "max_degree_healed": self.max_actual_degree,
            "max_degree_g_prime": self.max_g_prime_degree,
            "alive_nodes": self.num_nodes,
        }


def degree_report(healer) -> DegreeReport:
    """Compute a :class:`DegreeReport` for the healer's current state."""
    factors = per_node_degree_factors(healer)
    g_prime, actual = healer_views(healer)
    alive = healer.alive_nodes
    actual_degrees: List[int] = [actual.degree[v] for v in alive if v in actual]
    g_prime_degrees: List[int] = [g_prime.degree[v] for v in alive if v in g_prime]
    return DegreeReport(
        max_factor=max(factors.values()) if factors else 0.0,
        mean_factor=(sum(factors.values()) / len(factors)) if factors else 0.0,
        max_actual_degree=max(actual_degrees) if actual_degrees else 0,
        max_g_prime_degree=max(g_prime_degrees) if g_prime_degrees else 0,
        num_nodes=len(alive),
    )
