"""Small summary-statistics helpers used by experiment reports.

Kept deliberately tiny: the experiments only need robust summaries (mean,
median, percentiles, max) of short series such as "messages per deletion" or
"stretch after each step", and keeping this in one place makes the reported
tables uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a numeric series."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    minimum: float

    def as_row(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to a dict; keys optionally get a ``prefix``."""
        row = {
            "count": self.count,
            "mean": round(self.mean, 4),
            "median": round(self.median, 4),
            "p95": round(self.p95, 4),
            "max": round(self.maximum, 4),
            "min": round(self.minimum, 4),
        }
        if prefix:
            row = {f"{prefix}_{key}": value for key, value in row.items()}
        return row


def summarize(values: Iterable[float]) -> Summary:
    """Summarise a series, ignoring NaNs; an empty series summarises to zeros."""
    data: List[float] = [v for v in values if not (isinstance(v, float) and math.isnan(v))]
    if not data:
        return Summary(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0, minimum=0.0)
    finite = [v for v in data if math.isfinite(v)]
    if not finite:
        inf = float("inf")
        return Summary(count=len(data), mean=inf, median=inf, p95=inf, maximum=inf, minimum=inf)
    array = np.asarray(finite, dtype=float)
    has_inf = len(finite) != len(data)
    return Summary(
        count=len(data),
        mean=float("inf") if has_inf else float(array.mean()),
        median=float(np.median(array)),
        p95=float(np.percentile(array, 95)),
        maximum=float("inf") if has_inf else float(array.max()),
        minimum=float(array.min()),
    )
