"""CSR-based fast paths for the measurement hot loops.

The networkx graphs kept by the healers are dict-of-dicts: ideal for the
incremental updates of the engine, terrible for the measurement loops that
dominate experiment wall-clock (BFS from hundreds of sources after every few
adversarial moves).  This module converts a healer's graphs into int-indexed
CSR adjacency arrays once per measurement and runs the distance and
connectivity primitives on numpy: distances come from a batched *bitset* BFS
(all sources advance together, 64 per machine word), components from scipy
``csgraph`` when available with a pure-numpy fallback.

Key pieces
----------
:class:`NodeIndex`
    A stable, grow-only mapping from node identifiers to dense integers.
    Reusing one index across the many measurements of an attack (via
    :class:`MeasurementSession`) means node labels are translated once, not
    once per step.

:class:`CSRGraph`
    Frozen CSR adjacency (``indptr`` / ``indices``) over a :class:`NodeIndex`,
    with BFS distances and connected-component labels.

:class:`HealerSnapshot` / :class:`MeasurementSession`
    One measurement's view of a healer — ``G'`` and healed ``G`` as CSR over
    a shared index plus the alive mask — and the cross-step cache that
    produces them.

"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..core.ports import NodeId, sorted_nodes
from ..core.views import healer_views

try:  # pragma: no cover - exercised implicitly by whichever env runs the tests
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse import csgraph as _scipy_csgraph

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _scipy_csr_matrix = None
    _scipy_csgraph = None
    HAVE_SCIPY = False

__all__ = [
    "HAVE_SCIPY",
    "NodeIndex",
    "CSRGraph",
    "HealerSnapshot",
    "MeasurementSession",
    "snapshot_healer",
]


class NodeIndex:
    """Grow-only bijection between node identifiers and dense ``0..n-1`` ints.

    Nodes are assigned integers in first-seen order and never re-assigned, so
    an index built at step ``t`` remains valid at every later step of the same
    attack (healers never re-use identifiers).
    """

    __slots__ = ("_index", "_nodes")

    def __init__(self) -> None:
        self._index: Dict[NodeId, int] = {}
        self._nodes: List[NodeId] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def index_of(self, node: NodeId) -> int:
        """The dense integer assigned to ``node`` (KeyError if never seen)."""
        return self._index[node]

    def node_at(self, idx: int) -> NodeId:
        """The node identifier assigned to dense integer ``idx``."""
        return self._nodes[idx]

    def extend(self, nodes: Iterable[NodeId]) -> None:
        """Assign integers to any not-yet-seen nodes, in iteration order."""
        index = self._index
        store = self._nodes
        for node in nodes:
            if node not in index:
                index[node] = len(store)
                store.append(node)

    def indices_of(self, nodes: Sequence[NodeId]) -> np.ndarray:
        """Vector of dense integers for ``nodes``."""
        index = self._index
        return np.fromiter((index[n] for n in nodes), dtype=np.int64, count=len(nodes))

    def mask_of(self, nodes: Iterable[NodeId]) -> np.ndarray:
        """Boolean mask over the index with True at each of ``nodes``."""
        mask = np.zeros(len(self._nodes), dtype=bool)
        index = self._index
        for node in nodes:
            mask[index[node]] = True
        return mask


@dataclass
class CSRGraph:
    """Frozen CSR adjacency of an undirected graph over ``num_nodes`` dense ids."""

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int
    _components: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_graph(cls, graph: nx.Graph, index: NodeIndex) -> "CSRGraph":
        """Build the CSR arrays for ``graph`` using the dense ids of ``index``.

        Nodes of the index absent from ``graph`` become isolated rows, so
        snapshots of the healed graph (alive nodes only) and of ``G'`` (all
        nodes ever) can share one index.
        """
        n = len(index)
        m = graph.number_of_edges()
        rows = np.empty(2 * m, dtype=np.int64)
        cols = np.empty(2 * m, dtype=np.int64)
        lookup = index._index
        pos = 0
        for u, v in graph.edges:
            rows[pos] = lookup[u]
            cols[pos] = lookup[v]
            pos += 1
        rows[m:] = cols[:m]
        cols[m:] = rows[:m]
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(rows, kind="stable")
        return cls(indptr=indptr, indices=cols[order], num_nodes=n)

    # ------------------------------------------------------------------ #
    # distances
    # ------------------------------------------------------------------ #
    def bfs_distances(self, sources: np.ndarray) -> np.ndarray:
        """Hop distances from each source: float array of shape (k, n), inf = unreachable.

        All ``k`` BFS runs advance together as one *bitset* BFS: each node
        carries a ``k``-bit word marking which sources have reached it, and a
        level expansion ORs the words of every node's neighbours (a gather
        plus one ``bitwise_or.reduceat`` over the CSR arrays).  The work per
        level is O(m * k / 64) machine words — for the source counts used by
        stretch measurements this outruns both per-source dict BFS and
        priority-queue shortest paths by a wide margin, with no scipy needed.
        """
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        n = self.num_nodes
        k = sources.size
        nnz = self.indices.size
        if k == 0 or nnz == 0:
            dist = np.full((k, n), np.inf)
            if k:
                dist[np.arange(k), sources] = 0.0
            return dist

        words = (k + 63) // 64
        reached = np.zeros((n, words), dtype=np.uint64)
        bit = np.uint64(1) << (np.arange(k, dtype=np.uint64) & np.uint64(63))
        np.bitwise_or.at(reached, (sources, np.arange(k) >> 6), bit)
        frontier = reached.copy()

        def unpack(packed: np.ndarray) -> np.ndarray:
            return np.unpackbits(packed.view(np.uint8), axis=1, bitorder="little", count=k)

        # reduceat segment starts; rows with indptr[i] == nnz (trailing empty
        # rows) reduce over the all-zero sentinel appended to the gather
        # buffer, and interior empty rows are zeroed explicitly (reduceat
        # yields a[start] for an empty segment).
        row_starts = self.indptr[:-1]
        empty_rows = np.diff(self.indptr) == 0
        any_empty = bool(empty_rows.any())
        gathered = np.zeros((nnz + 1, words), dtype=np.uint64)
        # Distances accumulate implicitly: at every level each still-unreached
        # (node, source) pair gains +1, so a pair first reached at level L has
        # been counted exactly L times (pairs never reached are fixed up to
        # inf at the end).  This keeps the per-level work to pure SIMD-friendly
        # unpack/add passes — no index extraction in the loop.
        hops = np.zeros((n, k), dtype=np.uint32)
        while True:
            gathered[:nnz] = frontier[self.indices]
            candidate = np.bitwise_or.reduceat(gathered, row_starts, axis=0)
            if any_empty:
                candidate[empty_rows] = 0
            fresh = candidate & ~reached
            if not fresh.any():
                break
            hops += unpack(~reached)
            reached |= fresh
            frontier = fresh
        dist = hops.T.astype(np.float64)
        dist[unpack(reached).T == 0] = np.inf
        return dist

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #
    def component_labels(self) -> np.ndarray:
        """Connected-component label per dense id (isolated nodes get their own)."""
        if self._components is not None:
            return self._components
        if HAVE_SCIPY:
            matrix = _scipy_csr_matrix(
                (
                    np.ones(self.indices.size, dtype=np.int8),
                    self.indices,
                    self.indptr,
                ),
                shape=(self.num_nodes, self.num_nodes),
            )
            _, labels = _scipy_csgraph.connected_components(
                matrix, directed=True, connection="weak"
            )
        else:
            labels = np.full(self.num_nodes, -1, dtype=np.int64)
            # Isolated rows (session snapshots carry one per dead node) each
            # form their own component; label them without launching a BFS so
            # the fallback stays linear in the live graph, not in nodes_ever.
            isolated = np.flatnonzero(np.diff(self.indptr) == 0)
            labels[isolated] = np.arange(isolated.size)
            next_label = isolated.size
            for start in range(self.num_nodes):
                if labels[start] >= 0:
                    continue
                reached = np.isfinite(self.bfs_distances(np.array([start]))[0])
                labels[reached] = next_label
                next_label += 1
        self._components = labels
        return labels

    def degrees(self) -> np.ndarray:
        """Degree per dense id."""
        return np.diff(self.indptr)


@dataclass
class HealerSnapshot:
    """One measurement's int-indexed view of a healer's graphs.

    ``g_prime`` and ``actual`` share ``index``: rows of dense ids beyond a
    graph's own nodes are isolated, so distances/labels line up elementwise.
    """

    index: NodeIndex
    g_prime: CSRGraph
    actual: CSRGraph
    alive_mask: np.ndarray
    alive_sorted: List[NodeId]

    @property
    def num_alive(self) -> int:
        return len(self.alive_sorted)


class MeasurementSession:
    """Reusable cross-step cache for measuring one healer through an attack.

    The session owns a :class:`NodeIndex` that only ever grows, so the
    expensive node-label translation is incremental across the dozens of
    snapshots taken during a sweep.  Create one per attack (the experiment
    runner does) and call :meth:`snapshot` whenever metrics are needed.
    """

    def __init__(self) -> None:
        self.index = NodeIndex()

    def snapshot(self, healer) -> HealerSnapshot:
        """Take a CSR snapshot of the healer's current ``G'`` / ``G`` state."""
        g_prime, actual = healer_views(healer)
        self.index.extend(g_prime.nodes)
        alive = healer.alive_nodes
        return HealerSnapshot(
            index=self.index,
            g_prime=CSRGraph.from_graph(g_prime, self.index),
            actual=CSRGraph.from_graph(actual, self.index),
            alive_mask=self.index.mask_of(alive),
            alive_sorted=sorted_nodes(alive),
        )


def snapshot_healer(healer, session: Optional[MeasurementSession] = None) -> HealerSnapshot:
    """Snapshot ``healer`` with ``session``'s cached index, or a throwaway one."""
    return (session if session is not None else MeasurementSession()).snapshot(healer)
