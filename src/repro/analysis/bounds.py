"""Theoretical bounds of the paper, as executable formulas.

* :func:`degree_bound` / :func:`stretch_bound` — the Theorem 1 upper bounds
  the Forgiving Graph promises,
* :func:`lower_bound_stretch` — the Theorem 2 lower bound: *any* self-healing
  algorithm whose degree factor is at most ``alpha >= 3`` suffers stretch at
  least ``(1/2) * log_{alpha-1}(n-1)`` on the star graph,
* :func:`verify_tradeoff_against_lower_bound` — checks a measured
  (degree factor, stretch) point of some healer against that lower bound,
  which is how experiment E7 certifies that no baseline magically beats the
  trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "degree_bound",
    "stretch_bound",
    "lower_bound_stretch",
    "verify_tradeoff_against_lower_bound",
    "TradeoffCheck",
]


def degree_bound() -> float:
    """The multiplicative degree bound promised by Theorem 1.1."""
    return 3.0


def stretch_bound(n_ever: int) -> float:
    """The multiplicative stretch bound of Theorem 1.2 for ``n`` nodes seen so far."""
    if n_ever <= 2:
        return 1.0
    return math.log2(n_ever)


def repair_message_bound(degree: int, n_ever: int, constant: float = 20.0) -> float:
    """An explicit ``O(d log n)`` budget for repair messages (Lemma 4).

    The constant follows the counting in the proof of Lemma 4
    (``(3d/2)(12 log n + 4)`` is at most ``20 d log n`` for ``n >= 2``); the
    experiments check the measured message counts against this budget and,
    more importantly, fit the growth rate.
    """
    if degree <= 0:
        return 0.0
    return constant * degree * max(math.log2(max(n_ever, 2)), 1.0)


def repair_time_bound(degree: int, n_ever: int, constant: float = 4.0) -> float:
    """An explicit ``O(log d log n)`` budget for repair rounds (Lemma 4)."""
    if degree <= 1:
        return constant * max(math.log2(max(n_ever, 2)), 1.0)
    return constant * max(math.log2(degree), 1.0) * max(math.log2(max(n_ever, 2)), 1.0)


def lower_bound_stretch(n: int, alpha: float) -> float:
    """Theorem 2: minimum possible stretch for degree factor ``alpha`` on ``n`` nodes.

    ``beta >= (1/2) * log_{alpha - 1}(n - 1)`` for ``alpha >= 3``.  For
    ``alpha`` below 3 the theorem makes no claim; we return the value at
    ``alpha = 3`` as a conservative bound, matching the paper's statement
    range.
    """
    if n <= 2:
        return 1.0
    base = max(alpha, 3.0) - 1.0
    return 0.5 * math.log(n - 1, base)


@dataclass
class TradeoffCheck:
    """Outcome of checking a measured (degree factor, stretch) pair against Theorem 2."""

    n: int
    measured_degree_factor: float
    measured_stretch: float
    required_stretch: float

    @property
    def consistent(self) -> bool:
        """True when the measurement does *not* violate the lower bound.

        A violation would mean an algorithm achieved both a small degree
        factor and a stretch below the Theorem 2 floor — i.e. a bug in the
        measurement (or a disproof of the theorem).
        """
        return (
            self.measured_stretch >= self.required_stretch - 1e-9
            or math.isinf(self.measured_stretch)
        )


def verify_tradeoff_against_lower_bound(
    n: int,
    measured_degree_factor: float,
    measured_stretch: float,
) -> TradeoffCheck:
    """Check a measured trade-off point against the Theorem 2 lower bound.

    The check only binds when the measured degree factor is at least 3 — the
    range in which the theorem speaks.  For smaller factors the theorem is
    vacuous (the bound with ``alpha=3`` is reported for context).
    """
    alpha = max(measured_degree_factor, 3.0)
    required = lower_bound_stretch(n, alpha)
    return TradeoffCheck(
        n=n,
        measured_degree_factor=measured_degree_factor,
        measured_stretch=measured_stretch,
        required_stretch=required,
    )
