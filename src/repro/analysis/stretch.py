"""Stretch measurements (Theorem 1.2 / success metric 2 of Figure 1).

The stretch of a healed graph ``G_T`` relative to ``G'_T`` is::

    max over alive pairs x, y of   dist(x, y, G_T) / dist(x, y, G'_T)

Distances in ``G'`` may route through *deleted* nodes — that is what makes
the guarantee strong: the healed graph competes against a graph that never
lost anything.  Pairs disconnected in ``G'`` are ignored (their ratio is
undefined); pairs connected in ``G'`` but disconnected in the healed graph
give infinite stretch (only the no-healing baseline ever does this).

Exact stretch needs all-pairs shortest paths and is quadratic; for sweeps on
larger graphs :func:`stretch_report` samples source nodes (BFS from each
sampled source still gives the exact worst ratio over the sampled rows).

:func:`stretch_report` runs on the CSR fast paths of
:mod:`repro.analysis.fastpaths` — distances come from batched int-indexed
BFS rather than per-node dict BFS, and the node indexing can be shared
across the many measurements of one attack by passing a
:class:`~repro.analysis.fastpaths.MeasurementSession`.  The original
networkx implementation survives as :func:`stretch_report_reference`; the
equivalence tests assert both agree on every metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from ..core.ports import NodeId, sorted_nodes
from ..core.views import healer_views
from .fastpaths import HealerSnapshot, MeasurementSession, snapshot_healer

__all__ = [
    "pairwise_stretch",
    "stretch_report",
    "stretch_report_reference",
    "StretchReport",
]

SeedLike = Union[int, np.random.Generator, None]

#: Sources per bitset-BFS batch; bounds the (sources x nodes) distance block
#: to a few MB even on the largest sweep graphs while keeping the bit-words
#: of the batched BFS well filled.
_SOURCE_BLOCK = 256


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def pairwise_stretch(healer, x: NodeId, y: NodeId) -> float:
    """Stretch of the single pair ``(x, y)``.

    Returns ``inf`` if the pair is connected in ``G'`` but not in the healed
    graph and ``nan`` if it is disconnected even in ``G'``.  Works on
    read-only views of the healer's graphs — a single-pair query never copies
    a full graph.
    """
    g_prime, actual = healer_views(healer)
    try:
        base = nx.shortest_path_length(g_prime, x, y)
    except nx.NetworkXNoPath:
        return float("nan")
    if base == 0:
        return 1.0
    try:
        healed = nx.shortest_path_length(actual, x, y)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return float("inf")
    return healed / base


@dataclass
class StretchReport:
    """Aggregate stretch statistics for one healer state."""

    max_stretch: float
    mean_stretch: float
    pairs_measured: int
    disconnected_pairs: int
    #: The ``log2(n)`` bound of Theorem 1.2 for the current ``n`` (nodes ever seen).
    log_n_bound: float
    sampled: bool

    @property
    def within_bound(self) -> bool:
        """True when the measured worst stretch satisfies the Theorem 1.2 bound."""
        if math.isinf(self.max_stretch):
            return False
        return self.max_stretch <= max(self.log_n_bound, 1.0) + 1e-9

    def as_row(self) -> Dict[str, float]:
        """Flatten to a dict for the table reporters."""
        return {
            "stretch_max": round(self.max_stretch, 4) if math.isfinite(self.max_stretch) else float("inf"),
            "stretch_mean": round(self.mean_stretch, 4) if math.isfinite(self.mean_stretch) else float("inf"),
            "pairs": self.pairs_measured,
            "disconnected_pairs": self.disconnected_pairs,
            "log_n_bound": round(self.log_n_bound, 4),
            "within_bound": self.within_bound,
        }


def _empty_report(log_n_bound: float) -> StretchReport:
    return StretchReport(
        max_stretch=1.0,
        mean_stretch=1.0,
        pairs_measured=0,
        disconnected_pairs=0,
        log_n_bound=log_n_bound,
        sampled=False,
    )


def _pick_sources(
    alive: List[NodeId], max_sources: Optional[int], seed: SeedLike
) -> Tuple[List[NodeId], bool]:
    """The BFS sources: all alive nodes, or a seeded sample of ``max_sources``."""
    sampled = max_sources is not None and max_sources < len(alive)
    if not sampled:
        return alive, False
    rng = _rng(seed)
    picks = rng.choice(len(alive), size=max_sources, replace=False)
    return [alive[int(i)] for i in picks], True


def stretch_report(
    healer,
    max_sources: Optional[int] = None,
    seed: SeedLike = None,
    session: Optional[MeasurementSession] = None,
    snapshot: Optional[HealerSnapshot] = None,
) -> StretchReport:
    """Measure the stretch of the healer's current state.

    Parameters
    ----------
    healer:
        Any object with ``actual_graph`` / ``g_prime_view`` / ``alive_nodes``
        and ``nodes_ever`` (zero-copy ``actual_view`` / ``g_prime_graph_view``
        are used when present).
    max_sources:
        When given and smaller than the number of alive nodes, BFS is run
        only from this many sampled sources; the reported maximum is then a
        lower bound on the true maximum (adequate for sweeps, exact for
        tests that omit the parameter).
    seed:
        Seed for the source sampling.
    session:
        Optional :class:`MeasurementSession` whose node index is reused
        across calls (the experiment runner passes one per attack).
    snapshot:
        An already-taken :class:`HealerSnapshot` of ``healer``'s *current*
        state, when the caller measures several metrics off one snapshot.
    """
    n_ever = healer.nodes_ever
    log_n_bound = math.log2(n_ever) if n_ever > 1 else 1.0

    snap = snapshot if snapshot is not None else snapshot_healer(healer, session)
    alive = snap.alive_sorted
    if len(alive) < 2:
        return _empty_report(log_n_bound)

    sources, sampled = _pick_sources(alive, max_sources, seed)
    source_idx = snap.index.indices_of(sources)
    alive_mask = snap.alive_mask

    worst = 0.0
    total = 0.0
    pairs = 0
    disconnected = 0
    for start in range(0, source_idx.size, _SOURCE_BLOCK):
        block = source_idx[start : start + _SOURCE_BLOCK]
        base = snap.g_prime.bfs_distances(block)
        healed = snap.actual.bfs_distances(block)
        # A pair counts when the target is alive, differs from the source
        # (base > 0 covers that) and is reachable in G'.
        valid = alive_mask[np.newaxis, :] & np.isfinite(base) & (base > 0)
        pairs += int(valid.sum())
        healed_valid = healed[valid]
        base_valid = base[valid]
        broken = np.isinf(healed_valid)
        disconnected += int(broken.sum())
        ratios = healed_valid[~broken] / base_valid[~broken]
        if ratios.size:
            worst = max(worst, float(ratios.max()))
            total += float(ratios.sum())
    if disconnected:
        worst = float("inf")

    finite_pairs = pairs - disconnected
    mean = (total / finite_pairs) if finite_pairs else (float("inf") if disconnected else 1.0)
    return StretchReport(
        max_stretch=worst if pairs else 1.0,
        mean_stretch=mean,
        pairs_measured=pairs,
        disconnected_pairs=disconnected,
        log_n_bound=log_n_bound,
        sampled=sampled,
    )


def stretch_report_reference(
    healer,
    max_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> StretchReport:
    """The original dict-based networkx stretch measurement.

    Kept verbatim as the ground truth for :func:`stretch_report`: the
    equivalence tests run both over churned healers and assert identical
    metrics, and ``scripts/perf_report.py`` times it as the seed baseline.
    """
    actual = healer.actual_graph()
    g_prime = healer.g_prime_view()
    alive: List[NodeId] = sorted_nodes(healer.alive_nodes)
    n_ever = healer.nodes_ever
    log_n_bound = math.log2(n_ever) if n_ever > 1 else 1.0

    if len(alive) < 2:
        return _empty_report(log_n_bound)

    sources, sampled = _pick_sources(alive, max_sources, seed)

    alive_set = set(alive)
    worst = 0.0
    total = 0.0
    pairs = 0
    disconnected = 0
    for source in sources:
        base_dist = nx.single_source_shortest_path_length(g_prime, source)
        healed_dist = (
            nx.single_source_shortest_path_length(actual, source) if source in actual else {}
        )
        for target, base in base_dist.items():
            if target == source or target not in alive_set or base == 0:
                continue
            healed = healed_dist.get(target)
            pairs += 1
            if healed is None:
                disconnected += 1
                worst = float("inf")
                continue
            ratio = healed / base
            worst = max(worst, ratio)
            total += ratio
    finite_pairs = pairs - disconnected
    mean = (total / finite_pairs) if finite_pairs else (float("inf") if disconnected else 1.0)
    return StretchReport(
        max_stretch=worst if pairs else 1.0,
        mean_stretch=mean,
        pairs_measured=pairs,
        disconnected_pairs=disconnected,
        log_n_bound=log_n_bound,
        sampled=sampled,
    )
