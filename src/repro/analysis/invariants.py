"""Healer-agnostic guarantee checks.

While :meth:`repro.core.ForgivingGraph.check_invariants` verifies the
*internal* structure of the Forgiving Graph (haft shape, representative
mechanism, Lemma 3), the checks here look only at the externally observable
graphs and therefore apply to every healer: does healing preserve
connectivity, and does the current state satisfy the degree and stretch
guarantees of Theorem 1?

Distance- and connectivity-heavy checks run on the CSR fast paths of
:mod:`repro.analysis.fastpaths`; :func:`guarantee_report` takes every metric
off a single int-indexed snapshot, and accepts a
:class:`~repro.analysis.fastpaths.MeasurementSession` so the node indexing
is reused across the many measurements of an attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from .bounds import degree_bound, stretch_bound
from .degrees import degree_report
from .fastpaths import HealerSnapshot, MeasurementSession, snapshot_healer
from .stretch import stretch_report

__all__ = ["check_connectivity_preserved", "guarantee_report", "GuaranteeReport"]

SeedLike = Union[int, np.random.Generator, None]


def check_connectivity_preserved(healer, snapshot: Optional[HealerSnapshot] = None) -> bool:
    """True when every pair of alive nodes connected in ``G'`` is connected in the healed graph.

    This is the minimal promise of any self-healing algorithm: the adversary
    removed nodes, not the algorithm, so survivors that could still reach
    each other through the full history of insertions must remain mutually
    reachable after healing.

    The check compares connected-component labels of the two CSR snapshots:
    within every ``G'`` component, all alive nodes must carry the same healed
    component label.
    """
    snap = snapshot if snapshot is not None else snapshot_healer(healer)
    alive_idx = np.flatnonzero(snap.alive_mask)
    if alive_idx.size <= 1:
        return True
    g_prime_labels = snap.g_prime.component_labels()[alive_idx]
    actual_labels = snap.actual.component_labels()[alive_idx]
    order = np.argsort(g_prime_labels, kind="stable")
    gp = g_prime_labels[order]
    ac = actual_labels[order]
    same_group = gp[1:] == gp[:-1]
    return bool(np.all(ac[1:][same_group] == ac[:-1][same_group]))


@dataclass
class GuaranteeReport:
    """Theorem 1 compliance snapshot for one healer state."""

    healer_name: str
    n_ever: int
    alive: int
    degree_factor: float
    degree_bound: float
    stretch: float
    stretch_bound: float
    connected: bool

    @property
    def degree_ok(self) -> bool:
        """True when the measured degree factor is within the Theorem 1.1 bound."""
        return self.degree_factor <= self.degree_bound + 1e-9

    @property
    def stretch_ok(self) -> bool:
        """True when the measured stretch is within the Theorem 1.2 bound."""
        if math.isinf(self.stretch):
            return False
        return self.stretch <= max(self.stretch_bound, 1.0) + 1e-9

    def as_row(self) -> Dict[str, object]:
        """Flatten to a dict for the table reporters."""
        return {
            "healer": self.healer_name,
            "n_ever": self.n_ever,
            "alive": self.alive,
            "degree_factor": round(self.degree_factor, 3),
            "degree_bound": self.degree_bound,
            "degree_ok": self.degree_ok,
            "stretch": round(self.stretch, 3) if math.isfinite(self.stretch) else float("inf"),
            "stretch_bound": round(self.stretch_bound, 3),
            "stretch_ok": self.stretch_ok,
            "connected": self.connected,
        }


def guarantee_report(
    healer,
    max_sources: Optional[int] = None,
    seed: SeedLike = None,
    healer_name: Optional[str] = None,
    session: Optional[MeasurementSession] = None,
) -> GuaranteeReport:
    """Measure the Theorem 1 quantities for a healer's current state.

    ``max_sources`` limits the stretch computation to a sample of BFS
    sources (see :func:`repro.analysis.stretch.stretch_report`).  All the
    graph-distance metrics are taken off one CSR snapshot; pass a
    ``session`` to reuse its node indexing across repeated calls during an
    attack.
    """
    snap = snapshot_healer(healer, session)
    degrees = degree_report(healer)
    stretch = stretch_report(healer, max_sources=max_sources, seed=seed, snapshot=snap)
    name = healer_name if healer_name is not None else getattr(healer, "name", type(healer).__name__)
    return GuaranteeReport(
        healer_name=name,
        n_ever=healer.nodes_ever,
        alive=healer.num_alive,
        degree_factor=degrees.max_factor,
        degree_bound=degree_bound(),
        stretch=stretch.max_stretch,
        stretch_bound=stretch_bound(healer.nodes_ever),
        connected=check_connectivity_preserved(healer, snapshot=snap),
    )
