"""Experiment harness: regenerate every item of the paper's evaluation.

The paper is a theory paper, so its "tables and figures" are theorems,
lemmas and worked examples; DESIGN.md maps each of them (E1–E10) to an
executable experiment.  This package provides the plumbing:

* :mod:`repro.experiments.config` — declarative experiment descriptions,
* :mod:`repro.experiments.runner` — run one healer through one attack and
  measure the Theorem 1 quantities,
* :mod:`repro.experiments.sweeps` — parameter sweeps (over ``n``, topology,
  adversary, healer),
* :mod:`repro.experiments.reporting` — plain-text tables and CSV output,
* :mod:`repro.experiments.catalog` — one function per experiment id; running
  ``python -m repro.experiments`` regenerates them all.
"""

from .config import AttackConfig, ExperimentConfig
from .reporting import (
    JsonlReporter,
    format_table,
    json_safe_row,
    json_safe_value,
    read_jsonl,
    rows_to_csv,
    write_report,
)
from .runner import AttackOutcome, build_session, run_attack, run_healer_comparison
from .sweeps import (
    SweepTask,
    independent_repair_batches,
    repair_footprint,
    run_sweep,
    select_disjoint_victims,
    sweep_graph_sizes,
    sweep_healers,
    sweep_large_n,
    sweep_strategies,
)

__all__ = [
    "AttackConfig",
    "ExperimentConfig",
    "AttackOutcome",
    "build_session",
    "run_attack",
    "run_healer_comparison",
    "SweepTask",
    "independent_repair_batches",
    "repair_footprint",
    "run_sweep",
    "select_disjoint_victims",
    "sweep_graph_sizes",
    "sweep_healers",
    "sweep_large_n",
    "sweep_strategies",
    "format_table",
    "rows_to_csv",
    "write_report",
    "JsonlReporter",
    "json_safe_value",
    "json_safe_row",
    "read_jsonl",
]
