"""Run one healer (or several) through an adversarial attack and measure it.

The runner is thin glue between the declarative configs and the unified
:class:`repro.engine.AttackSession`: it instantiates the topology, adversary
and healer described by an :class:`~repro.experiments.config.ExperimentConfig`,
lets the session own the step loop, and wraps the session result into flat
rows ready for :mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..adversary.schedule import AttackSchedule
from ..adversary.strategies import RandomInsertion, make_deletion_strategy
from ..analysis.invariants import GuaranteeReport
from ..baselines.spec import HealerSpec
from ..engine import AttackSession, SessionResult
from .config import ExperimentConfig
from .reporting import json_safe_value

__all__ = [
    "AttackOutcome",
    "build_schedule",
    "build_session",
    "run_attack",
    "run_healer_comparison",
]


@dataclass
class AttackOutcome:
    """Result of running one healer through one attack."""

    healer_name: str
    config: ExperimentConfig
    #: Theorem 1 compliance snapshot at the end of the attack.
    final_report: GuaranteeReport
    #: Worst degree factor and stretch observed at *any* point during the attack
    #: (the theorems are "at any time" statements, so the peak matters).
    peak_degree_factor: float
    peak_stretch: float
    deletions: int
    insertions: int
    wall_clock_seconds: float
    #: Optional per-step time series (only kept when ``track_series`` was set).
    series: List[Dict[str, float]] = field(default_factory=list)

    @classmethod
    def from_session_result(cls, config: ExperimentConfig, result: SessionResult) -> "AttackOutcome":
        """Wrap an engine :class:`~repro.engine.SessionResult` with its config."""
        return cls(
            healer_name=result.healer_name,
            config=config,
            final_report=result.final_report,
            peak_degree_factor=result.peak_degree_factor,
            peak_stretch=result.peak_stretch,
            deletions=result.deletions,
            insertions=result.insertions,
            wall_clock_seconds=result.wall_clock_seconds,
            series=result.series,
        )

    def as_row(self) -> Dict[str, object]:
        """Flatten to a table row (configuration + headline numbers).

        Every value is JSON-safe: non-finite floats become the ``"inf"`` /
        ``"-inf"`` / ``"nan"`` string sentinels (see
        :func:`repro.experiments.reporting.json_safe_value`), so rows can be
        streamed to JSONL without ever emitting invalid JSON.
        """
        row = dict(self.config.describe())
        row.update(
            {
                "healer": self.healer_name,
                "deletions": self.deletions,
                "insertions": self.insertions,
                "degree_factor": json_safe_value(round(self.peak_degree_factor, 3)),
                "degree_bound": self.final_report.degree_bound,
                "stretch": json_safe_value(
                    round(self.peak_stretch, 3) if math.isfinite(self.peak_stretch) else self.peak_stretch
                ),
                "stretch_bound": json_safe_value(round(self.final_report.stretch_bound, 3)),
                "connected": self.final_report.connected,
                "seconds": round(self.wall_clock_seconds, 3),
            }
        )
        return row


def build_schedule(config: ExperimentConfig, n0: int) -> AttackSchedule:
    """Instantiate the attack schedule described by an experiment config."""
    attack = config.attack
    return AttackSchedule(
        steps=attack.steps_for(n0),
        deletion_strategy=make_deletion_strategy(attack.strategy, seed=config.seed),
        insertion_strategy=RandomInsertion(k=attack.insertion_degree, seed=config.seed + 1),
        delete_probability=attack.delete_probability,
        min_survivors=attack.min_survivors,
        seed=config.seed + 2,
    )


def build_session(
    config: ExperimentConfig,
    healer_name: str,
    graph: Optional[nx.Graph] = None,
    track_series: bool = False,
    measure_every: int = 0,
    cross_check_every: Optional[int] = None,
) -> AttackSession:
    """Materialize the engine session for one (config, healer) pair.

    ``measure_every=0`` selects the session's automatic coarse interval.
    ``cross_check_every=k`` opts in to the cadence-gated oracle cross-check
    (the healer's ``verify_consistency`` at every ``k``-th measurement).

    A non-lossless ``attack.fault_spec`` builds the healer with the
    corresponding seeded :class:`~repro.distributed.faults.FaultSchedule`
    (derived from the experiment seed, so runs stay reproducible); only the
    message-passing healer has a network to injure, so the typed
    :class:`~repro.baselines.HealerSpec` rejects any other healer name.
    """
    initial = graph if graph is not None else config.graph.build(seed=config.seed)
    healer = HealerSpec(healer_name, fault=config.attack.fault_spec).build(
        initial, seed=config.seed
    )
    schedule = build_schedule(config, initial.number_of_nodes())
    return AttackSession(
        healer,
        schedule,
        healer_name=healer_name,
        stretch_sources=config.stretch_sources,
        seed=config.seed,
        measure_every=measure_every if measure_every > 0 else None,
        track_series=track_series,
        cross_check_every=cross_check_every,
    )


def run_attack(
    config: ExperimentConfig,
    healer_name: str,
    graph: Optional[nx.Graph] = None,
    track_series: bool = False,
    measure_every: int = 0,
) -> AttackOutcome:
    """Run a single healer through the configured attack.

    Parameters
    ----------
    config:
        The experiment description.
    healer_name:
        One of :func:`repro.baselines.available_healers`.
    graph:
        Reuse an already-built initial topology (so that different healers in
        one comparison face exactly the same graph); built from the config's
        :class:`GraphSpec` when omitted.
    track_series:
        Record a per-measurement time series (degree factor / stretch after
        every ``measure_every`` steps) in the outcome.
    measure_every:
        How often (in adversarial moves) to take intermediate measurements;
        ``0`` measures only peaks at a coarse automatic interval.
    """
    session = build_session(
        config, healer_name, graph=graph, track_series=track_series, measure_every=measure_every
    )
    return AttackOutcome.from_session_result(config, session.run())


def _comparison_task(payload: Tuple[ExperimentConfig, str, nx.Graph, bool]) -> AttackOutcome:
    """One healer of a comparison (module-level so worker processes can pickle it).

    The worker receives its *own copy* of the base graph (pickling across
    the process boundary is the deep copy), so every healer still faces the
    identical initial topology without sharing a mutable object.
    """
    config, healer_name, graph, track_series = payload
    return run_attack(config, healer_name, graph=graph, track_series=track_series)


def run_healer_comparison(
    config: ExperimentConfig,
    track_series: bool = False,
    max_workers: Optional[int] = None,
) -> List[AttackOutcome]:
    """Run every healer named in the config against the *same* initial graph and attack.

    The base graph is built exactly once.  Serially (``max_workers`` of
    ``None``/``0``/``1``, the default) every healer gets it directly — the
    seed behaviour, retained so single-core runs pay no copying.  With
    ``max_workers > 1`` the healers fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor` in copy-per-worker
    mode: each worker deep-copies the base graph (the pickling across the
    process boundary), so all healers still face the identical topology and
    the rows are bit-identical to the serial path (equivalence-pinned by
    ``tests/test_sweeps_and_streaming.py``) while E9-style comparisons
    scale with cores.  Results come back in config order regardless of
    completion order.
    """
    graph = config.graph.build(seed=config.seed)
    if max_workers is None or max_workers <= 1:
        return [
            run_attack(config, healer_name, graph=graph, track_series=track_series)
            for healer_name in config.healers
        ]
    payloads = [
        (config, healer_name, graph, track_series) for healer_name in config.healers
    ]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_comparison_task, payloads))
