"""Run one healer (or several) through an adversarial attack and measure it.

The runner is the glue between the generators, adversaries, healers and the
analysis layer: it instantiates everything from an
:class:`~repro.experiments.config.ExperimentConfig`, plays the attack, and
returns flat result rows ready for :mod:`repro.experiments.reporting`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from ..adversary.schedule import AttackSchedule
from ..adversary.strategies import RandomInsertion, make_deletion_strategy
from ..analysis.fastpaths import MeasurementSession
from ..analysis.invariants import GuaranteeReport, guarantee_report
from ..baselines.registry import make_healer
from ..core.ports import NodeId
from .config import AttackConfig, ExperimentConfig

__all__ = ["AttackOutcome", "run_attack", "run_healer_comparison"]


@dataclass
class AttackOutcome:
    """Result of running one healer through one attack."""

    healer_name: str
    config: ExperimentConfig
    #: Theorem 1 compliance snapshot at the end of the attack.
    final_report: GuaranteeReport
    #: Worst degree factor and stretch observed at *any* point during the attack
    #: (the theorems are "at any time" statements, so the peak matters).
    peak_degree_factor: float
    peak_stretch: float
    deletions: int
    insertions: int
    wall_clock_seconds: float
    #: Optional per-step time series (only kept when ``track_series`` was set).
    series: List[Dict[str, float]] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        """Flatten to a table row (configuration + headline numbers)."""
        row = dict(self.config.describe())
        row.update(
            {
                "healer": self.healer_name,
                "deletions": self.deletions,
                "insertions": self.insertions,
                "degree_factor": round(self.peak_degree_factor, 3),
                "degree_bound": self.final_report.degree_bound,
                "stretch": round(self.peak_stretch, 3) if math.isfinite(self.peak_stretch) else float("inf"),
                "stretch_bound": round(self.final_report.stretch_bound, 3),
                "connected": self.final_report.connected,
                "seconds": round(self.wall_clock_seconds, 3),
            }
        )
        return row


def build_schedule(config: ExperimentConfig, n0: int) -> AttackSchedule:
    """Instantiate the attack schedule described by an experiment config."""
    attack = config.attack
    return AttackSchedule(
        steps=attack.steps_for(n0),
        deletion_strategy=make_deletion_strategy(attack.strategy, seed=config.seed),
        insertion_strategy=RandomInsertion(k=attack.insertion_degree, seed=config.seed + 1),
        delete_probability=attack.delete_probability,
        min_survivors=attack.min_survivors,
        seed=config.seed + 2,
    )


def run_attack(
    config: ExperimentConfig,
    healer_name: str,
    graph: Optional[nx.Graph] = None,
    track_series: bool = False,
    measure_every: int = 0,
) -> AttackOutcome:
    """Run a single healer through the configured attack.

    Parameters
    ----------
    config:
        The experiment description.
    healer_name:
        One of :func:`repro.baselines.available_healers`.
    graph:
        Reuse an already-built initial topology (so that different healers in
        one comparison face exactly the same graph); built from the config's
        :class:`GraphSpec` when omitted.
    track_series:
        Record a per-measurement time series (degree factor / stretch after
        every ``measure_every`` steps) in the outcome.
    measure_every:
        How often (in adversarial moves) to take intermediate measurements;
        ``0`` measures only peaks at a coarse automatic interval.
    """
    initial = graph if graph is not None else config.graph.build(seed=config.seed)
    healer = make_healer(healer_name, initial)
    schedule = build_schedule(config, initial.number_of_nodes())

    interval = measure_every if measure_every > 0 else max(schedule.steps // 8, 1)
    peak_degree = 0.0
    peak_stretch = 0.0
    series: List[Dict[str, float]] = []
    counters = {"delete": 0, "insert": 0, "step": 0}
    # One session per attack: the CSR node indexing is built once and only
    # extended as the adversary inserts nodes, instead of re-derived per step.
    session = MeasurementSession()

    def snapshot(step: int) -> None:
        nonlocal peak_degree, peak_stretch
        report = guarantee_report(
            healer,
            max_sources=config.stretch_sources,
            seed=config.seed,
            healer_name=healer_name,
            session=session,
        )
        peak_degree = max(peak_degree, report.degree_factor)
        peak_stretch = max(peak_stretch, report.stretch)
        if track_series:
            series.append(
                {
                    "step": step,
                    "alive": report.alive,
                    "degree_factor": report.degree_factor,
                    "stretch": report.stretch,
                    "stretch_bound": report.stretch_bound,
                }
            )

    def on_event(event, _healer) -> None:
        counters[event.kind] += 1
        counters["step"] += 1
        if counters["step"] % interval == 0:
            snapshot(counters["step"])

    start = time.perf_counter()
    schedule.run(healer, on_event=on_event)
    final = guarantee_report(
        healer,
        max_sources=config.stretch_sources,
        seed=config.seed,
        healer_name=healer_name,
        session=session,
    )
    elapsed = time.perf_counter() - start
    peak_degree = max(peak_degree, final.degree_factor)
    peak_stretch = max(peak_stretch, final.stretch)

    return AttackOutcome(
        healer_name=healer_name,
        config=config,
        final_report=final,
        peak_degree_factor=peak_degree,
        peak_stretch=peak_stretch,
        deletions=counters["delete"],
        insertions=counters["insert"],
        wall_clock_seconds=elapsed,
        series=series,
    )


def run_healer_comparison(
    config: ExperimentConfig,
    track_series: bool = False,
) -> List[AttackOutcome]:
    """Run every healer named in the config against the *same* initial graph and attack."""
    graph = config.graph.build(seed=config.seed)
    return [
        run_attack(config, healer_name, graph=graph, track_series=track_series)
        for healer_name in config.healers
    ]
