"""Parameter sweeps built on top of the single-run runner.

Sweeps are how the benchmarks and EXPERIMENTS.md show the *shape* of the
paper's claims: e.g. the degree factor staying flat while ``n`` grows, or
the stretch tracking ``log n`` rather than ``n``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..generators.graphs import GraphSpec
from .config import AttackConfig, ExperimentConfig
from .runner import AttackOutcome, run_attack, run_healer_comparison

__all__ = ["sweep_graph_sizes", "sweep_healers", "sweep_strategies"]

Row = Dict[str, object]


def sweep_graph_sizes(
    name: str,
    topology: str,
    sizes: Sequence[int],
    attack: Optional[AttackConfig] = None,
    healer: str = "forgiving_graph",
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    graph_params: Optional[Dict[str, float]] = None,
) -> List[Row]:
    """Run the same attack on the same topology family at several sizes.

    Returns one row per size; this is the sweep behind the ``log n`` scaling
    experiments (E3/E4 in DESIGN.md).
    """
    attack = attack if attack is not None else AttackConfig()
    rows: List[Row] = []
    for n in sizes:
        config = ExperimentConfig(
            name=name,
            graph=GraphSpec(topology=topology, n=n, params=dict(graph_params or {})),
            attack=attack,
            healers=(healer,),
            seed=seed,
            stretch_sources=stretch_sources,
        )
        outcome = run_attack(config, healer)
        rows.append(outcome.as_row())
    return rows


def sweep_healers(
    name: str,
    topology: str,
    n: int,
    healers: Sequence[str],
    attack: Optional[AttackConfig] = None,
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    graph_params: Optional[Dict[str, float]] = None,
) -> List[Row]:
    """Compare several healers on the identical initial graph and attack (E9)."""
    config = ExperimentConfig(
        name=name,
        graph=GraphSpec(topology=topology, n=n, params=dict(graph_params or {})),
        attack=attack if attack is not None else AttackConfig(),
        healers=tuple(healers),
        seed=seed,
        stretch_sources=stretch_sources,
    )
    return [outcome.as_row() for outcome in run_healer_comparison(config)]


def sweep_strategies(
    name: str,
    topology: str,
    n: int,
    strategies: Sequence[str],
    healer: str = "forgiving_graph",
    delete_fraction: float = 0.5,
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
) -> List[Row]:
    """Run one healer against several adversary strategies on the same topology."""
    rows: List[Row] = []
    for strategy in strategies:
        config = ExperimentConfig(
            name=name,
            graph=GraphSpec(topology=topology, n=n),
            attack=AttackConfig(strategy=strategy, delete_fraction=delete_fraction),
            healers=(healer,),
            seed=seed,
            stretch_sources=stretch_sources,
        )
        rows.append(run_attack(config, healer).as_row())
    return rows
