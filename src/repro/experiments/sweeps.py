"""Parameter sweeps: parallel multi-config execution on the session engine.

Sweeps are how the benchmarks and EXPERIMENTS.md show the *shape* of the
paper's claims: e.g. the degree factor staying flat while ``n`` grows, or
the stretch tracking ``log n`` rather than ``n``.

Every sweep is a list of :class:`SweepTask` objects — one fully-seeded
(config, healer) pair each — executed by :func:`run_sweep`:

* **serial** by default (``max_workers=None``), or **parallel** across a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``max_workers > 1``.
  Each task is deterministic given its config's seed, so results are
  bit-identical regardless of worker count or completion order; rows are
  returned in task order.
* optionally **streaming**: pass ``jsonl_path`` to append each finished row
  to a JSONL checkpoint the moment it lands
  (:class:`repro.experiments.reporting.JsonlReporter`); with ``resume=True``
  tasks whose key is already in the file are skipped, so an interrupted
  sweep picks up where it stopped.

The classic sweep constructors (:func:`sweep_graph_sizes`,
:func:`sweep_healers`, :func:`sweep_strategies`) build the task lists and
delegate to :func:`run_sweep`.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..core.ports import NodeId
from ..generators.graphs import GraphSpec
from .config import AttackConfig, ExperimentConfig
from .reporting import JsonlReporter, json_safe_row
from .runner import run_attack, run_healer_comparison

__all__ = [
    "SweepTask",
    "independent_repair_batches",
    "repair_footprint",
    "run_sweep",
    "select_disjoint_victims",
    "sweep_graph_sizes",
    "sweep_healers",
    "sweep_large_n",
    "sweep_strategies",
    "sweep_fault_presets",
]

Row = Dict[str, object]


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a fully-seeded experiment config plus a healer."""

    config: ExperimentConfig
    healer: str

    @property
    def key(self) -> str:
        """Deterministic checkpoint key (stable across processes and runs)."""
        described = self.config.describe()
        parts = [f"{k}={described[k]}" for k in sorted(described)]
        parts.append(f"healer={self.healer}")
        return "|".join(parts)


def _execute_task(task: SweepTask) -> Row:
    """Run one task to a flat row (module-level so worker processes can pickle it)."""
    return run_attack(task.config, task.healer).as_row()


def run_sweep(
    tasks: Sequence[SweepTask],
    *,
    max_workers: Optional[int] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> List[Row]:
    """Execute sweep tasks, optionally in parallel, optionally streaming JSONL.

    Parameters
    ----------
    tasks:
        The (config, healer) pairs to run.  Each must be deterministic given
        its config seed — that is what makes parallel execution and resume
        safe.
    max_workers:
        ``None``/``0``/``1`` runs serially in-process; anything larger fans
        tasks out over a process pool.
    jsonl_path:
        When given, every finished row is appended (and flushed) to this
        JSONL file as it completes, tagged with the task's checkpoint key.
    resume:
        With ``jsonl_path``: skip tasks whose key already has a row in the
        file, and include those prior rows in the returned list.

    Returns
    -------
    list of rows in *task order* (independent of completion order), with
    JSON-safe values and a uniform shape whether a row was computed this run
    or loaded from the resume checkpoint.  The ``task_key`` bookkeeping
    column lives only in the JSONL stream — returned rows stay clean for
    tables and CSVs.
    """
    reporter: Optional[JsonlReporter] = None
    rows_by_key: Dict[str, Row] = {}
    try:
        if jsonl_path is not None:
            reporter = JsonlReporter(jsonl_path, resume=resume)
            for row in reporter.existing_rows:
                key = row.get("task_key")
                if key is not None:
                    row = dict(row)
                    del row["task_key"]
                    rows_by_key[str(key)] = row

        pending = [t for t in tasks if t.key not in rows_by_key]

        def record(task: SweepTask, row: Row) -> None:
            # JSON-safe values so fresh rows match checkpoint-loaded ones.
            row = json_safe_row(row)
            rows_by_key[task.key] = row
            if reporter is not None:
                reporter.write(row, task_key=task.key)

        if max_workers is None or max_workers <= 1:
            for task in pending:
                record(task, _execute_task(task))
        else:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {pool.submit(_execute_task, task): task for task in pending}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        record(futures[future], future.result())
    finally:
        if reporter is not None:
            reporter.close()
    return [rows_by_key[task.key] for task in tasks]


# --------------------------------------------------------------------------- #
# classic sweep constructors
# --------------------------------------------------------------------------- #
def sweep_graph_sizes(
    name: str,
    topology: str,
    sizes: Sequence[int],
    attack: Optional[AttackConfig] = None,
    healer: str = "forgiving_graph",
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    graph_params: Optional[Dict[str, float]] = None,
    max_workers: Optional[int] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> List[Row]:
    """Run the same attack on the same topology family at several sizes.

    Returns one row per size; this is the sweep behind the ``log n`` scaling
    experiments (E3/E4 in DESIGN.md).
    """
    attack = attack if attack is not None else AttackConfig()
    tasks = [
        SweepTask(
            config=ExperimentConfig(
                name=name,
                graph=GraphSpec(topology=topology, n=n, params=dict(graph_params or {})),
                attack=attack,
                healers=(healer,),
                seed=seed,
                stretch_sources=stretch_sources,
            ),
            healer=healer,
        )
        for n in sizes
    ]
    return run_sweep(tasks, max_workers=max_workers, jsonl_path=jsonl_path, resume=resume)


def sweep_healers(
    name: str,
    topology: str,
    n: int,
    healers: Sequence[str],
    attack: Optional[AttackConfig] = None,
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    graph_params: Optional[Dict[str, float]] = None,
    max_workers: Optional[int] = None,
) -> List[Row]:
    """Compare several healers on the identical initial graph and attack (E9).

    All healers must face the *same* initial graph, which
    :func:`repro.experiments.runner.run_healer_comparison` builds exactly
    once; serial by default, ``max_workers > 1`` selects its copy-per-worker
    parallel mode (each worker gets a deep copy of that one graph, rows stay
    bit-identical to the serial path).
    """
    config = ExperimentConfig(
        name=name,
        graph=GraphSpec(topology=topology, n=n, params=dict(graph_params or {})),
        attack=attack if attack is not None else AttackConfig(),
        healers=tuple(healers),
        seed=seed,
        stretch_sources=stretch_sources,
    )
    return [
        outcome.as_row()
        for outcome in run_healer_comparison(config, max_workers=max_workers)
    ]


def sweep_strategies(
    name: str,
    topology: str,
    n: int,
    strategies: Sequence[str],
    healer: str = "forgiving_graph",
    delete_fraction: float = 0.5,
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    max_workers: Optional[int] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> List[Row]:
    """Run one healer against several adversary strategies on the same topology."""
    tasks = [
        SweepTask(
            config=ExperimentConfig(
                name=name,
                graph=GraphSpec(topology=topology, n=n),
                attack=AttackConfig(strategy=strategy, delete_fraction=delete_fraction),
                healers=(healer,),
                seed=seed,
                stretch_sources=stretch_sources,
            ),
            healer=healer,
        )
        for strategy in strategies
    ]
    return run_sweep(tasks, max_workers=max_workers, jsonl_path=jsonl_path, resume=resume)


def sweep_fault_presets(
    name: str,
    topology: str,
    n: int,
    presets: Sequence[str],
    delete_fraction: float = 0.4,
    seed: int = 0,
    stretch_sources: Optional[int] = 48,
    max_workers: Optional[int] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> List[Row]:
    """Run the message-passing healer under several network fault presets.

    The fault axis of the sweep space (experiment E11): every task plays
    the identical attack on the identical topology, differing only in the
    seeded drop/delay/reorder schedule injected under the repair protocol —
    so the rows isolate what faulty links cost and confirm the guarantees
    survive reconvergence.
    """
    tasks = [
        SweepTask(
            config=ExperimentConfig(
                name=name,
                graph=GraphSpec(topology=topology, n=n),
                attack=AttackConfig(
                    strategy="max_degree",
                    delete_fraction=delete_fraction,
                    fault_preset=preset,
                ),
                healers=("distributed_forgiving_graph",),
                seed=seed,
                stretch_sources=stretch_sources,
            ),
            healer="distributed_forgiving_graph",
        )
        for preset in presets
    ]
    return run_sweep(tasks, max_workers=max_workers, jsonl_path=jsonl_path, resume=resume)


# --------------------------------------------------------------------------- #
# sharded large-n sweeps
# --------------------------------------------------------------------------- #
def repair_footprint(healer, victim: NodeId) -> FrozenSet[NodeId]:
    """The processors one deletion's repair would touch, read from the plan.

    Wraps :func:`repro.distributed.protocol.plan_repair` — a read-only,
    pre-deletion inspection costing O(victim neighbourhood + broken glue) —
    and returns the participant set (every processor the plan hands a
    :class:`RepairContext`, plus the victim itself).  Two repairs whose
    footprints are disjoint share no spine, no anchor and no scaffold
    traffic, so they can heal in parallel without racing: this is the
    independence test :func:`independent_repair_batches` and the sharded
    sweeps build on.  Accepts the distributed healer or a bare engine.
    """
    from ..distributed.protocol import plan_repair

    engine = getattr(healer, "_engine", healer)
    plan = plan_repair(engine, victim)
    return frozenset(plan.contexts) | {victim}


def independent_repair_batches(
    footprints: Sequence[Tuple[NodeId, FrozenSet[NodeId]]],
) -> List[List[NodeId]]:
    """Greedily group repairs with pairwise-disjoint footprints into batches.

    ``footprints`` is a sequence of ``(victim, footprint)`` pairs (see
    :func:`repair_footprint`).  Returns batches of victims, in input order
    within each batch: every batch's footprints are pairwise disjoint, so
    its repairs touch disjoint spines and may run concurrently; successive
    batches must still run in sequence.  Greedy first-fit keeps the
    grouping deterministic (a victim lands in the earliest batch it does
    not collide with), which the sharded-sweep equivalence relies on.
    """
    batches: List[List[NodeId]] = []
    occupied: List[set] = []
    for victim, footprint in footprints:
        for index, taken in enumerate(occupied):
            if taken.isdisjoint(footprint):
                batches[index].append(victim)
                taken.update(footprint)
                break
        else:
            batches.append([victim])
            occupied.append(set(footprint))
    return batches


def select_disjoint_victims(
    healer,
    candidates: Sequence[NodeId],
    limit: Optional[int] = None,
) -> List[NodeId]:
    """First-fit a burst of pairwise-disjoint-footprint victims (read-only).

    Walks ``candidates`` in order, keeping each victim whose
    :func:`repair_footprint` is disjoint from everything already kept —
    i.e. the first batch :func:`independent_repair_batches` would form —
    optionally truncated to ``limit``.  This is how the concurrent-burst
    experiments and the ``concurrent_repairs`` BENCH gate pick a burst
    that ``delete_batch`` can admit in a single wave.
    """
    footprints = [(victim, repair_footprint(healer, victim)) for victim in candidates]
    batches = independent_repair_batches(footprints)
    burst = batches[0] if batches else []
    return burst[:limit] if limit is not None else burst


def sweep_large_n(
    name: str,
    topology: str,
    total_nodes: int,
    shards: int,
    attack: Optional[AttackConfig] = None,
    healer: str = "distributed_forgiving_graph",
    seed: int = 0,
    stretch_sources: Optional[int] = 16,
    graph_params: Optional[Dict[str, float]] = None,
    max_workers: Optional[int] = None,
    jsonl_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    shared_network: bool = False,
    burst_width: int = 32,
    candidate_pool: int = 256,
) -> List[Row]:
    """Shard one large-n churn run into independent sub-networks and fan out.

    The million-node scaling path: ``total_nodes`` processors are split
    into ``shards`` near-equal disjoint sub-graphs, each built and churned
    as its own :class:`ExperimentConfig` task on the existing
    deterministic-seed pool (:func:`run_sweep`).  Disjoint node spaces are
    the coarse-grained form of the plan-footprint independence
    (:func:`repair_footprint`): repairs in different shards can never share
    a spine, so the shards are embarrassingly parallel and the row set is
    bit-identical at any worker count.  Each shard's seed is derived from
    ``seed`` and its index, so the sweep as a whole is reproducible and
    resumable (``jsonl_path`` / ``resume``) like any other sweep.

    Returns one row per shard; aggregate throughput (the BENCH ``large_n``
    nodes/sec) is ``total_nodes / max(seconds)`` under a parallel pool and
    ``total_nodes / sum(seconds)`` serially.

    With ``shared_network=True`` the sharding is dropped entirely: the whole
    ``total_nodes`` graph is built as *one* :class:`DistributedForgivingGraph`
    and churned in-process through ``delete_batch`` waves — each burst is a
    pairwise-disjoint-footprint victim set (:func:`select_disjoint_victims`
    over a seeded random ``candidate_pool`` of degree >= 2 survivors, at most
    ``burst_width`` victims per burst), so every wave's repairs share one
    ``deliver_round`` stream on one message fabric instead of per-shard
    sub-networks.  ``shards``/``max_workers``/``resume`` are ignored in this
    mode; the return value is a single summary row (deletions, waves, rounds,
    ``nodes_per_sec``, consistency and connectivity verdicts).
    """
    if shared_network:
        return _sweep_large_n_shared(
            name,
            topology,
            total_nodes,
            attack=attack,
            seed=seed,
            graph_params=graph_params,
            jsonl_path=jsonl_path,
            burst_width=burst_width,
            candidate_pool=candidate_pool,
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if total_nodes < shards * 4:
        raise ValueError(
            f"total_nodes={total_nodes} too small to split into {shards} shards"
        )
    attack = attack if attack is not None else AttackConfig(
        strategy="max_degree", delete_fraction=0.4
    )
    base, excess = divmod(total_nodes, shards)
    tasks = [
        SweepTask(
            config=ExperimentConfig(
                name=f"{name}-shard{index}",
                graph=GraphSpec(
                    topology=topology,
                    n=base + (1 if index < excess else 0),
                    params=dict(graph_params or {}),
                ),
                attack=attack,
                healers=(healer,),
                seed=seed * 1_000_003 + index,
                stretch_sources=stretch_sources,
            ),
            healer=healer,
        )
        for index in range(shards)
    ]
    return run_sweep(tasks, max_workers=max_workers, jsonl_path=jsonl_path, resume=resume)


def _sweep_large_n_shared(
    name: str,
    topology: str,
    total_nodes: int,
    *,
    attack: Optional[AttackConfig],
    seed: int,
    graph_params: Optional[Dict[str, float]],
    jsonl_path: Optional[Union[str, Path]],
    burst_width: int,
    candidate_pool: int,
) -> List[Row]:
    """One-network large-n churn: disjoint victim bursts through batch waves.

    The in-process complement of the sharded path: instead of splitting the
    node space, the entire graph lives on a single :class:`Network` (one
    message pool, one outbox, one metrics ledger) and the burst driver
    repeatedly feeds ``delete_batch`` a first-fit disjoint-footprint victim
    set until the attack's deletion budget is spent.  Deterministic given
    ``seed``: candidate sampling, victim selection and every repair replay
    identically across runs.
    """
    import random
    import time as _time

    import networkx as nx

    from ..distributed.simulator import DistributedForgivingGraph

    if total_nodes < 8:
        raise ValueError(f"total_nodes={total_nodes} too small for a shared-network run")
    attack = attack if attack is not None else AttackConfig(
        strategy="random", delete_fraction=0.01, delete_probability=1.0
    )
    graph = GraphSpec(
        topology=topology, n=total_nodes, params=dict(graph_params or {})
    ).build(seed)
    build_start = _time.perf_counter()
    sim = DistributedForgivingGraph.from_graph(graph)
    build_seconds = _time.perf_counter() - build_start
    rng = random.Random(seed * 1_000_003 + 17)
    target = max(1, int(total_nodes * attack.delete_fraction))
    min_survivors = max(int(getattr(attack, "min_survivors", 2)), 2)
    deleted = 0
    waves = 0
    rounds = 0
    dry_bursts = 0
    churn_start = _time.perf_counter()
    while deleted < target and sim.num_alive > min_survivors and dry_bursts < 5:
        alive = sorted(sim.alive_nodes)
        pool = rng.sample(alive, min(candidate_pool, len(alive)))
        view = sim.actual_view()
        candidates = [node for node in pool if view.degree(node) >= 2]
        burst = select_disjoint_victims(
            sim, candidates, limit=min(burst_width, target - deleted)
        )
        if not burst:
            dry_bursts += 1
            continue
        dry_bursts = 0
        report = sim.delete_batch(burst)
        deleted += len(burst)
        waves += report.waves
        rounds += report.rounds
    churn_seconds = _time.perf_counter() - churn_start
    sim.verify_consistency()
    healed = sim.actual_view()
    connected = healed.number_of_nodes() == 0 or nx.is_connected(healed)
    total_seconds = build_seconds + churn_seconds
    row: Row = {
        "name": name,
        "topology": topology,
        "healer": "distributed_forgiving_graph",
        "n": total_nodes,
        "seed": seed,
        "shared_network": True,
        "deletions": deleted,
        "deletion_target": target,
        "waves": waves,
        "rounds": rounds,
        "final_alive": sim.num_alive,
        "connected": bool(connected),
        "build_seconds": round(build_seconds, 4),
        "churn_seconds": round(churn_seconds, 4),
        "seconds": round(total_seconds, 4),
        "nodes_per_sec": round(total_nodes / total_seconds, 1) if total_seconds else 0.0,
        "deletions_per_sec": (
            round(deleted / churn_seconds, 2) if churn_seconds else 0.0
        ),
    }
    if jsonl_path is not None:
        reporter = JsonlReporter(jsonl_path, resume=False)
        try:
            reporter.write(row, task_key=f"{name}|shared|n={total_nodes}|seed={seed}")
        finally:
            reporter.close()
    return [row]
