"""The experiment catalog: one entry per item of DESIGN.md's experiment index.

Each ``experiment_e*`` function regenerates one row-set of EXPERIMENTS.md.
They accept a ``scale`` parameter so the same code serves three purposes:

* ``scale="smoke"`` — seconds; used by the integration tests,
* ``scale="bench"`` — the sizes used by ``benchmarks/`` (pytest-benchmark),
* ``scale="full"``  — the sizes quoted in EXPERIMENTS.md
  (``python -m repro.experiments`` regenerates the whole report).

Every function returns ``(title, rows, preamble)`` ready for
:func:`repro.experiments.reporting.write_report`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from ..adversary.schedule import churn_schedule, deletion_only_schedule
from ..adversary.strategies import MaxDegreeDeletion
from ..core.ports import NodeKey
from ..core.views import g_prime_view_of
from ..analysis.bounds import lower_bound_stretch, stretch_bound
from ..analysis.invariants import guarantee_report
from ..analysis.stats import summarize
from ..baselines.spec import HealerSpec
from ..core.forgiving_graph import ForgivingGraph
from ..core.haft import (
    build_haft,
    depth,
    haft_shape_signature,
    is_haft,
    leaves,
    merge,
    primary_roots,
)
from ..distributed.faults import (
    BYZANTINE_PRESETS,
    DELIVERY_PRESETS,
    FaultSchedule,
    fault_schedule,
)
from ..distributed.metrics import aggregate_byzantine, aggregate_recovery
from ..distributed.simulator import DistributedForgivingGraph
from ..engine import AttackSession
from ..generators.graphs import make_graph, star_graph
from .config import AttackConfig
from .sweeps import select_disjoint_victims, sweep_graph_sizes, sweep_healers

__all__ = [
    "SCALES",
    "experiment_e1_haft_structure",
    "experiment_e2_haft_merge",
    "experiment_e3_degree_increase",
    "experiment_e4_stretch",
    "experiment_e5_repair_cost",
    "experiment_e6_invariants",
    "experiment_e7_lower_bound",
    "experiment_e8_paper_figures",
    "experiment_e9_healer_comparison",
    "experiment_e10_churn",
    "experiment_e11_fault_tolerance",
    "experiment_e12_recovery_cost",
    "experiment_e13_byzantine_containment",
    "experiment_e14_concurrent_bursts",
    "all_experiments",
]

Row = Dict[str, object]
Section = Tuple[str, List[Row], str]

#: Workload sizes per scale; "full" stays laptop-friendly (< a few minutes).
SCALES: Dict[str, Dict[str, object]] = {
    "smoke": {
        "haft_sizes": [1, 2, 3, 5, 8, 13, 21, 64],
        "merge_trials": 10,
        "graph_sizes": [40, 80],
        "cost_graph_size": 60,
        "cost_deletions": 25,
        "invariant_steps": 40,
        "star_sizes": [16, 64],
        "comparison_size": 80,
        "churn_steps": 60,
        "stretch_sources": 24,
        "fault_graph_size": 40,
        "fault_deletions": 15,
    },
    "bench": {
        "haft_sizes": [1, 7, 64, 255, 1024, 4095],
        "merge_trials": 40,
        "graph_sizes": [100, 200, 400],
        "cost_graph_size": 150,
        "cost_deletions": 80,
        "invariant_steps": 120,
        "star_sizes": [32, 128, 512],
        "comparison_size": 200,
        "churn_steps": 200,
        "stretch_sources": 32,
        "fault_graph_size": 80,
        "fault_deletions": 35,
    },
    "full": {
        "haft_sizes": [1, 7, 64, 255, 1024, 4095, 8192],
        "merge_trials": 100,
        "graph_sizes": [100, 200, 400, 800],
        "cost_graph_size": 300,
        "cost_deletions": 200,
        "invariant_steps": 250,
        "star_sizes": [32, 128, 512, 2048],
        "comparison_size": 300,
        "churn_steps": 400,
        "stretch_sources": 40,
        "fault_graph_size": 120,
        "fault_deletions": 60,
    },
}


def _params(scale: str) -> Dict[str, object]:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


# --------------------------------------------------------------------------- #
# E1 / E2 — half-full trees (Lemmas 1 and 2, Figures 3 and 5)
# --------------------------------------------------------------------------- #
def experiment_e1_haft_structure(scale: str = "full") -> Section:
    """Lemma 1: haft(l) is unique, strips into popcount(l) complete trees, has depth ceil(log2 l)."""
    rows: List[Row] = []
    for size in _params(scale)["haft_sizes"]:
        haft = build_haft(list(range(size)))
        haft_depth = depth(haft)
        bound = math.ceil(math.log2(size)) if size > 1 else 0
        roots = primary_roots(haft)
        # uniqueness: rebuilding from a different payload order gives the same shape
        signature_a = haft_shape_signature(haft)
        signature_b = haft_shape_signature(build_haft([f"x{i}" for i in range(size)]))
        rows.append(
            {
                "leaves": size,
                "depth": haft_depth,
                "ceil_log2": bound,
                "depth_ok": haft_depth == bound,
                "primary_roots": len(roots),
                "popcount": bin(size).count("1"),
                "strip_ok": len(roots) == bin(size).count("1"),
                "unique_shape": signature_a == signature_b,
                "valid_haft": is_haft(haft),
            }
        )
    preamble = (
        "Lemma 1: the half-full tree over `l` leaves is unique, has depth "
        "`ceil(log2 l)`, and decomposes into one complete tree per 1-bit of `l`."
    )
    return ("E1 — haft structure (Lemma 1, Figure 3)", rows, preamble)


def experiment_e2_haft_merge(scale: str = "full") -> Section:
    """Lemma 2 / Figure 5: merging hafts behaves like binary addition of their leaf counts."""
    params = _params(scale)
    rng = np.random.default_rng(20090214)
    rows: List[Row] = []
    for trial in range(int(params["merge_trials"])):
        count = int(rng.integers(2, 6))
        sizes = [int(rng.integers(1, 200)) for _ in range(count)]
        hafts = [build_haft([f"t{trial}_{i}_{j}" for j in range(size)]) for i, size in enumerate(sizes)]
        merged = merge(hafts)
        total = sum(sizes)
        rows.append(
            {
                "trial": trial,
                "input_sizes": "+".join(str(s) for s in sizes),
                "total_leaves": total,
                "merged_leaves": len(leaves(merged)),
                "valid_haft": is_haft(merged),
                "depth": depth(merged),
                "depth_bound": math.ceil(math.log2(total)) if total > 1 else 0,
                "primary_roots": len(primary_roots(merged)),
                "popcount": bin(total).count("1"),
            }
        )
    preamble = (
        "Merging hafts is binary addition: the merged tree is the unique haft over the "
        "summed leaf count, so its primary-root count equals the popcount of the sum "
        "and its depth stays at `ceil(log2 total)`."
    )
    return ("E2 — haft merge = binary addition (Lemma 2, Figure 5)", rows, preamble)


# --------------------------------------------------------------------------- #
# E3 / E4 — Theorem 1.1 and 1.2
# --------------------------------------------------------------------------- #
def experiment_e3_degree_increase(scale: str = "full") -> Section:
    """Theorem 1.1: the degree factor stays bounded by a small constant across sizes and topologies."""
    params = _params(scale)
    rows: List[Row] = []
    for topology in ("power_law", "erdos_renyi", "star"):
        rows.extend(
            sweep_graph_sizes(
                name="E3",
                topology=topology,
                sizes=params["graph_sizes"],
                attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
                healer="forgiving_graph",
                seed=3,
                stretch_sources=int(params["stretch_sources"]),
            )
        )
    preamble = (
        "Theorem 1.1 claims `deg(v, G_T) <= 3 * deg(v, G'_T)` for every node at every time. "
        "The table reports the worst factor observed at any measurement point of a "
        "max-degree deletion attack removing half the nodes."
    )
    return ("E3 — degree increase under attack (Theorem 1.1)", rows, preamble)


def experiment_e4_stretch(scale: str = "full") -> Section:
    """Theorem 1.2: stretch stays below log2(n) while n grows."""
    params = _params(scale)
    rows: List[Row] = []
    for strategy in ("max_degree", "random", "cut"):
        rows.extend(
            sweep_graph_sizes(
                name=f"E4-{strategy}",
                topology="erdos_renyi",
                sizes=params["graph_sizes"],
                attack=AttackConfig(strategy=strategy, delete_fraction=0.5),
                healer="forgiving_graph",
                seed=4,
                stretch_sources=int(params["stretch_sources"]),
            )
        )
    preamble = (
        "Theorem 1.2 claims `dist(x, y, G_T) <= log2(n) * dist(x, y, G'_T)`. "
        "The table reports the worst sampled stretch at any measurement point, against "
        "the `log2(n)` bound, for three adversaries."
    )
    return ("E4 — stretch under attack (Theorem 1.2)", rows, preamble)


# --------------------------------------------------------------------------- #
# E5 — Lemma 4 / Theorem 1.3: repair cost on the message-passing substrate
# --------------------------------------------------------------------------- #
def experiment_e5_repair_cost(scale: str = "full") -> Section:
    """Lemma 4: messages O(d log n), rounds O(log d log n), message size O(log n)."""
    params = _params(scale)
    n = int(params["cost_graph_size"])
    deletions = int(params["cost_deletions"])
    graph = make_graph("power_law", n, seed=5)
    healer = DistributedForgivingGraph.from_graph(graph)
    # The distributed healer is driven through the unified engine like every
    # other workload; each deletion's StepEvent carries its DeletionCostReport.
    schedule = deletion_only_schedule(
        steps=deletions, strategy=MaxDegreeDeletion(), min_survivors=3
    )
    session = AttackSession(
        healer,
        schedule,
        healer_name="distributed_forgiving_graph",
        measure_every=0,
        measure_final=False,
    )
    cost_reports = [
        event.cost_report for event in session.stream() if event.cost_report is not None
    ]
    healer.verify_consistency()

    # Bucket the per-deletion reports by victim degree so the d-dependence is visible.
    buckets: Dict[int, List] = {}
    for report in cost_reports:
        buckets.setdefault(report.degree, []).append(report)
    rows: List[Row] = []
    for degree in sorted(buckets):
        reports = buckets[degree]
        messages = summarize([r.messages for r in reports])
        rounds = summarize([r.rounds for r in reports])
        rows.append(
            {
                "victim_degree_d": degree,
                "repairs": len(reports),
                "messages_mean": round(messages.mean, 1),
                "messages_max": int(messages.maximum),
                "message_budget_O(d log n)": round(max(r.message_budget for r in reports), 1),
                "rounds_mean": round(rounds.mean, 1),
                "rounds_max": int(rounds.maximum),
                "round_budget_O(log d log n)": round(max(r.round_budget for r in reports), 1),
                "max_message_bits": max(r.max_message_bits for r in reports),
                "log2_n_bits_unit": math.ceil(math.log2(max(reports[-1].n_ever, 2))),
                "within_budgets": all(
                    r.within_message_budget and r.within_round_budget for r in reports
                ),
            }
        )
    preamble = (
        "Each deletion is replayed as explicit messages on the round-based simulator. "
        "Rows are grouped by the victim's degree `d`; the budget columns are the explicit "
        "`O(d log n)` / `O(log d log n)` budgets from Lemma 4's counting."
    )
    return ("E5 — repair cost (Lemma 4 / Theorem 1.3)", rows, preamble)


# --------------------------------------------------------------------------- #
# E6 — Lemma 3: structural invariants over a long run
# --------------------------------------------------------------------------- #
def experiment_e6_invariants(scale: str = "full") -> Section:
    """Lemma 3: at most one helper per edge; full invariant suite holds along a long churn run."""
    params = _params(scale)
    steps = int(params["invariant_steps"])
    graph = make_graph("erdos_renyi", max(int(params["cost_graph_size"]) // 2, 30), seed=6)
    fg = ForgivingGraph.from_graph(graph, check_invariants=True, invariant_check_limit=10_000)
    schedule = churn_schedule(steps=steps, delete_probability=0.6, seed=6)
    events = schedule.run(fg)

    helper_counts = [len(rt.helpers) for rt in fg.reconstruction_trees()]
    leaf_counts = [rt.size for rt in fg.reconstruction_trees()]
    rows: List[Row] = [
        {
            "churn_steps": len(events),
            "alive": fg.num_alive,
            "nodes_ever": fg.nodes_ever,
            "reconstruction_trees": len(fg.reconstruction_trees()),
            "rt_leaves_total": sum(leaf_counts),
            "rt_helpers_total": sum(helper_counts),
            "helpers_equal_leaves_minus_one": all(
                h == max(l - 1, 0) for h, l in zip(helper_counts, leaf_counts)
            ),
            "invariant_violations": 0,  # check_invariants raised on every step otherwise
            "degree_factor": round(fg.degree_increase_factor(), 3),
        }
    ]
    preamble = (
        "The engine re-verifies every structural invariant (valid hafts, the leaf/port "
        "bijection, Lemma 3's one-helper-per-edge rule, the representative mechanism, "
        "connectivity) after every step of a mixed insert/delete run; reaching the end "
        "of the run means zero violations."
    )
    return ("E6 — structural invariants under churn (Lemma 3)", rows, preamble)


# --------------------------------------------------------------------------- #
# E7 — Theorem 2: the lower bound on the star graph
# --------------------------------------------------------------------------- #
def experiment_e7_lower_bound(scale: str = "full") -> Section:
    """Theorem 2: on the star, any low-degree healer must stretch; FG sits near the bound."""
    params = _params(scale)
    rows: List[Row] = []
    for n in params["star_sizes"]:
        star = star_graph(n)
        for healer_name in ("forgiving_graph", "cycle_heal", "clique_heal", "surrogate_heal"):
            healer = HealerSpec(healer_name).build(star)
            healer.delete(0)  # the hub
            report = guarantee_report(healer, healer_name=healer_name)
            alpha = max(report.degree_factor, 3.0)
            rows.append(
                {
                    "n": n,
                    "healer": healer_name,
                    "degree_factor": round(report.degree_factor, 3),
                    "stretch": round(report.stretch, 3),
                    "theorem2_floor(alpha)": round(lower_bound_stretch(n, alpha), 3),
                    "theorem1_ceiling(log2 n)": round(stretch_bound(n), 3),
                    "consistent_with_lower_bound": report.stretch >= lower_bound_stretch(n, alpha) - 1e-9
                    or report.degree_factor > 3.0,
                }
            )
    preamble = (
        "Theorem 2: deleting the hub of an `n`-star forces stretch at least "
        "`0.5 * log_(alpha-1)(n-1)` on any healer whose degree factor stays at `alpha`. "
        "Healers that beat the stretch floor (clique, surrogate) can only do so by "
        "blowing up some node's degree — the trade-off is unavoidable."
    )
    return ("E7 — degree/stretch trade-off lower bound (Theorem 2)", rows, preamble)


# --------------------------------------------------------------------------- #
# E8 — the worked examples of Figures 2 and 6-8
# --------------------------------------------------------------------------- #
def experiment_e8_paper_figures(scale: str = "full") -> Section:
    """Reproduce the paper's worked examples: a deleted node is replaced by its RT."""
    rows: List[Row] = []

    # Figure 2: a node v with 8 neighbours a..h is deleted and replaced by RT(v).
    neighbors = list("abcdefgh")
    fg = ForgivingGraph.from_edges([("v", x) for x in neighbors], check_invariants=True)
    fg.delete("v")
    rt = fg.reconstruction_trees()[0]
    healed = fg.actual_graph()
    rows.append(
        {
            "figure": "Fig. 2 (star of 8 around v)",
            "rt_leaves": rt.size,
            "rt_depth": rt.depth,
            "expected_depth": math.ceil(math.log2(len(neighbors))),
            "max_degree_after": max(dict(healed.degree()).values()),
            "healed_diameter": nx.diameter(healed),
            "valid": rt.size == len(neighbors) and rt.depth == 3,
        }
    )

    # Figures 7-8: successive deletions make reconstruction trees merge.
    path_edges = [(i, i + 1) for i in range(8)]
    fg2 = ForgivingGraph.from_edges(path_edges, check_invariants=True)
    for victim in (3, 5, 4):  # deleting 4 merges the RTs created by 3 and 5
        fg2.delete(victim)
    rows.append(
        {
            "figure": "Figs. 7-8 (RTs merge after neighbouring deletions)",
            "rt_leaves": sum(rt.size for rt in fg2.reconstruction_trees()),
            "rt_depth": max(rt.depth for rt in fg2.reconstruction_trees()),
            "expected_depth": math.ceil(math.log2(max(sum(rt.size for rt in fg2.reconstruction_trees()), 2))),
            "max_degree_after": max(dict(fg2.actual_graph().degree()).values()),
            "healed_diameter": nx.diameter(fg2.actual_graph()),
            "valid": len(fg2.reconstruction_trees()) == 1,
        }
    )
    preamble = (
        "The worked examples of the paper, executed: a deleted node is replaced by a "
        "reconstruction tree over its neighbours (Figure 2); deleting a node adjacent to "
        "existing RTs merges everything into a single haft (Figures 7-8)."
    )
    return ("E8 — worked examples (Figures 2, 6-8)", rows, preamble)


# --------------------------------------------------------------------------- #
# E9 / E10 — comparisons and churn
# --------------------------------------------------------------------------- #
def experiment_e9_healer_comparison(scale: str = "full") -> Section:
    """Forgiving Graph vs Forgiving Tree vs naive healers under targeted attack."""
    params = _params(scale)
    rows: List[Row] = []
    for topology in ("power_law", "erdos_renyi"):
        rows.extend(
            sweep_healers(
                name=f"E9-{topology}",
                topology=topology,
                n=int(params["comparison_size"]),
                healers=(
                    "forgiving_graph",
                    "forgiving_tree",
                    "cycle_heal",
                    "clique_heal",
                    "surrogate_heal",
                    "no_heal",
                ),
                attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
                seed=9,
                stretch_sources=int(params["stretch_sources"]),
            )
        )
    preamble = (
        "Every healer faces the same initial graph and the same max-degree attack. "
        "Only the Forgiving Graph keeps the degree factor near 3 *and* the stretch near "
        "the `log n` bound; each baseline sacrifices one side of the trade-off."
    )
    return ("E9 — healer comparison (introduction / Forgiving Tree gap)", rows, preamble)


def experiment_e10_churn(scale: str = "full") -> Section:
    """Mixed insertions and deletions: the Forgiving Graph needs no initialization and handles churn."""
    params = _params(scale)
    rows: List[Row] = []
    for delete_probability in (0.3, 0.5, 0.7):
        fg = ForgivingGraph.from_graph(make_graph("power_law", int(params["comparison_size"]) // 2, seed=10))
        schedule = churn_schedule(
            steps=int(params["churn_steps"]),
            delete_probability=delete_probability,
            seed=10,
        )
        session = AttackSession(
            fg,
            schedule,
            healer_name="forgiving_graph",
            stretch_sources=int(params["stretch_sources"]),
            seed=10,
            measure_every=0,
        )
        result = session.run()
        report = result.final_report
        rows.append(
            {
                "delete_probability": delete_probability,
                "steps": result.steps,
                "insertions": result.insertions,
                "deletions": result.deletions,
                "alive": report.alive,
                "nodes_ever": report.n_ever,
                "degree_factor": round(report.degree_factor, 3),
                "stretch": round(report.stretch, 3),
                "stretch_bound": round(report.stretch_bound, 3),
                "connected": report.connected,
            }
        )
    preamble = (
        "The Forgiving Graph handles adversarial insertions interleaved with deletions "
        "(the Forgiving Tree could not); the guarantees keep holding under churn."
    )
    return ("E10 — mixed insertion/deletion churn (model of Figure 1)", rows, preamble)


def experiment_e11_fault_tolerance(scale: str = "full") -> Section:
    """Message-native repairs under faulty links: divergence is detected and healed.

    Every preset plays the identical max-degree deletion attack on the
    identical topology through the unified engine; only the seeded
    drop/delay/reorder schedule under the repair protocol differs.  With
    the merge message-native, lost messages genuinely desynchronize the
    processors — the rows certify that the reconvergence loop restores
    exact agreement with the reference oracle after every single deletion
    (``converged`` / ``consistent_with_oracle``), and show what the faults
    cost in retransmissions and extra rounds.
    """
    params = _params(scale)
    n = int(params["fault_graph_size"])
    deletions = int(params["fault_deletions"])
    graph = make_graph("power_law", n, seed=11)
    rows: List[Row] = []
    for preset in ("lossless", "drop", "delay", "reorder", "chaos"):
        healer = DistributedForgivingGraph.from_graph(
            graph, fault_schedule=fault_schedule(preset, seed=11)
        )
        schedule = deletion_only_schedule(
            steps=deletions, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(
            healer,
            schedule,
            healer_name="distributed_forgiving_graph",
            measure_every=0,
            measure_final=True,
            stretch_sources=int(params["stretch_sources"]),
        )
        reports = [
            event.cost_report for event in session.stream() if event.cost_report is not None
        ]
        consistent = True
        try:
            healer.verify_consistency()
        except Exception:
            consistent = False
        final = session.result.final_report
        rows.append(
            {
                "fault_preset": preset,
                "repairs": len(reports),
                "messages": sum(r.messages for r in reports),
                "dropped": sum(r.dropped_messages for r in reports),
                "retransmissions": sum(r.retransmissions for r in reports),
                "reconvergence_rounds": sum(r.reconvergence_rounds for r in reports),
                "all_converged": all(r.converged for r in reports),
                "consistent_with_oracle": consistent,
                "stretch": round(final.stretch, 3),
                "stretch_bound": round(final.stretch_bound, 3),
                "connected": final.connected,
            }
        )
    preamble = (
        "The repair merge is computed from messages, so dropped/delayed/reordered "
        "messages make processors disagree about the healed structure.  Each row runs "
        "the same attack under one seeded fault preset; reconvergence retransmits what "
        "the audit finds missing until the distributed state again equals the oracle's, "
        "with the Theorem 1 guarantees intact."
    )
    return ("E11 — fault tolerance of the message-native merge", rows, preamble)


def experiment_e12_recovery_cost(scale: str = "full") -> Section:
    """Recovery cost of the gossip-digest anti-entropy protocol, per fault preset.

    Every preset plays the identical attack with the repair plan's global
    knowledge *poisoned* (``quarantine_plan_audit``), so each row also
    certifies that the recovery ran on digest messages alone.  The lossless
    row drives :meth:`reconverge` explicitly after every deletion: its
    digest traffic is the pure *detection* price — one silent sweep, zero
    retransmissions — while the faulty rows show what drops/delays add in
    retransmissions and extra sweeps, all within the Lemma-4-style
    per-sweep budgets of :class:`RecoveryCostReport`.
    """
    params = _params(scale)
    n = int(params["fault_graph_size"])
    deletions = int(params["fault_deletions"])
    graph = make_graph("power_law", n, seed=12)
    rows: List[Row] = []
    # The delivery registry itself: new delivery presets join E12.  The
    # byzantine presets stay out — quarantining a liar leaves a deliberate,
    # permanent oracle divergence, which E13 measures instead.
    for preset in DELIVERY_PRESETS:
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=fault_schedule(preset, seed=12),
            quarantine_plan_audit=True,
        )
        schedule = deletion_only_schedule(
            steps=deletions, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(
            healer,
            schedule,
            healer_name="distributed_forgiving_graph",
            measure_every=0,
            measure_final=False,
        )
        for event in session.stream():
            if event.kind == "delete" and healer.fault_schedule is None:
                # No faults, no auto-reconvergence: drive the recovery by
                # hand so the detection cost is measured on its own.
                healer.reconverge()
        consistent = True
        try:
            healer.verify_consistency()
        except Exception:
            consistent = False
        repair_bits = sum(r.bits for r in healer.cost_reports)
        row: Row = {"fault_preset": preset, "repairs": len(healer.cost_reports)}
        row.update(aggregate_recovery(healer.recovery_reports))
        row["digest_bits_per_repair_bit"] = round(
            row["digest_bits"] / max(repair_bits, 1), 3
        )
        row["consistent_with_oracle"] = consistent
        rows.append(row)
    preamble = (
        "Recovery is message-native: participants gossip compact digests of their own "
        "repair state (acknowledged chunk by chunk) and retransmit only what digests "
        "show missing, with the plan-based global audit poisoned.  Rows separate the "
        "price of detection (digest traffic, paid even on a lossless network) from the "
        "price of the faults (retransmissions, extra sweeps), under explicit per-sweep "
        "Lemma-4-style budgets."
    )
    return ("E12 — gossip-digest recovery cost vs fault preset", rows, preamble)


def experiment_e13_byzantine_containment(scale: str = "full") -> Section:
    """Byzantine payload faults: accountable detection, containment, latency.

    Sweeps the byzantine population fraction (0 = honest baseline) with the
    preset lie policy: designated processors corrupt outgoing descriptors,
    lie in digests and equivocate assignments.  Detection is message-native
    — payload seals, descriptor checksums, cross-witness validation — and
    the repair plan's global knowledge is *poisoned*
    (``quarantine_plan_audit``), so every accusation provably came from the
    messages alone.  Each row scores the transcript against the oracle-side
    injection log: ``all_lies_caught`` (every origin whose lie was actually
    delivered got accused), ``false_accusations`` (must stay zero — honest
    processors are never quarantined), the **containment radius** (how many
    processors a liar's payloads reached before quarantine) and the
    **detection latency** in delivery rounds.
    """
    params = _params(scale)
    n = int(params["fault_graph_size"])
    deletions = int(params["fault_deletions"])
    graph = make_graph("power_law", n, seed=13)
    policy = BYZANTINE_PRESETS["byzantine"].policy
    rows: List[Row] = []
    for fraction in (0.0, 0.05, 0.15, 0.3):
        sched = FaultSchedule(
            seed=13,
            name=f"byzantine-{fraction:g}",
            byzantine_fraction=fraction,
            byzantine_policy=policy,
        )
        healer = DistributedForgivingGraph.from_graph(
            graph,
            fault_schedule=sched,
            quarantine_plan_audit=True,
        )
        schedule = deletion_only_schedule(
            steps=deletions, strategy=MaxDegreeDeletion(), min_survivors=3
        )
        session = AttackSession(
            healer,
            schedule,
            healer_name="distributed_forgiving_graph",
            measure_every=0,
            measure_final=False,
        )
        for _ in session.stream():
            pass
        byzantine_pop = sum(1 for node in graph.nodes if sched.is_byzantine(node))
        transcript = healer.network.transcript
        injection = healer.network.injection_log
        accused = set(transcript.accused) if transcript is not None else set()
        row: Row = {
            "byzantine_fraction": fraction,
            "byzantine_processors": byzantine_pop,
            "repairs": len(healer.cost_reports),
            "converged": all(r.converged for r in healer.cost_reports),
        }
        row.update(
            aggregate_byzantine([r.byzantine for r in healer.cost_reports])
        )
        row["all_lies_caught"] = accused == injection.origins_with_delivered_lies
        rows.append(row)
    preamble = (
        "Byzantine processors corrupt the payloads they send — descriptors, digest "
        "records, assignments — and the protocol catches them message-natively: "
        "payload seals and descriptor checksums expose in-flight tampering, "
        "cross-witnessing exposes equivocation, and every contradiction lands as an "
        "accusation (with the conflicting message pair as evidence) that quarantines "
        "the liar.  Rows score the transcript against the oracle-side injection log: "
        "every delivered lie is caught, no honest processor is ever accused, and the "
        "containment radius / detection latency bound how far a lie spreads."
    )
    return ("E13 — byzantine containment and accountable detection", rows, preamble)


def experiment_e14_concurrent_bursts(scale: str = "full") -> Section:
    """Concurrent epoch-tagged bursts: repair latency trends to max, not sum.

    One burst of deletions with pairwise-disjoint repair footprints (picked
    by :func:`~repro.experiments.sweeps.select_disjoint_victims`, away from
    the hubs whose footprints blanket the graph) is healed three ways on
    identical copies of the same graph: one repair at a time (the retained
    reference path, bit-identical to sequential :meth:`delete` calls), with
    admission capped at two concurrent repairs, and unbounded.  Because the
    admitted repairs share one ``deliver_round`` stream, the burst's round
    count trends towards the *maximum* of the individual repair latencies
    instead of their sum — ``round_ratio`` is the measured fraction of the
    sequential cost.  Anti-entropy rides the same fabric in the background;
    on this lossless run every epoch's fixed-point probe must be empty
    (``silent_fixed_point``), the protocol's silence made measurable.
    """
    params = _params(scale)
    n = int(params["fault_graph_size"])
    graph = make_graph("power_law", n, seed=14)
    probe = DistributedForgivingGraph.from_graph(graph)
    degree = g_prime_view_of(probe).degree
    candidates = [
        v
        for v in sorted(probe.alive_nodes, key=lambda v: (-degree[v], NodeKey(v)))
        if degree[v] >= 3
    ]
    # Hubs' footprints blanket a power-law graph; skipping the largest few
    # leaves enough mutually disjoint repairs to make a real burst.
    victims = select_disjoint_victims(probe, candidates[5:], limit=8)
    if len(victims) < 2:
        victims = select_disjoint_victims(probe, candidates, limit=8)
    rows: List[Row] = []
    sequential_rounds = 0
    for label, concurrency in (("sequential", 1), ("cap-2", 2), ("unbounded", None)):
        healer = DistributedForgivingGraph.from_graph(graph)
        burst = healer.delete_batch(victims, concurrency=concurrency)
        consistent = True
        try:
            healer.verify_consistency()
        except Exception:
            consistent = False
        if concurrency == 1:
            sequential_rounds = burst.rounds
        silent = all(
            r.recovery is not None and r.recovery.fixed_point_messages == 0
            for r in burst.reports
        )
        rows.append(
            {
                "admission": label,
                "burst_k": len(victims),
                "waves": burst.waves,
                "rounds": burst.rounds,
                "round_ratio": round(burst.rounds / max(sequential_rounds, 1), 3),
                "messages": sum(r.messages for r in burst.reports),
                "silent_fixed_point": silent if concurrency != 1 else None,
                "consistent_with_oracle": consistent,
            }
        )
    preamble = (
        "A burst of deletions with pairwise-disjoint repair footprints is healed "
        "concurrently: every message carries its repair's victim as epoch tag, all "
        "admitted repairs interleave in one delivery stream, and each epoch's "
        "anti-entropy gossip rides the same fabric in the background.  The burst's "
        "round count trends to the max of the individual repair latencies instead of "
        "their sum (round_ratio vs the bit-identical sequential reference), and on "
        "the lossless path every epoch's recovery goes provably silent: the "
        "fixed-point probe emits zero messages."
    )
    return ("E14 — concurrent burst repair latency vs admission concurrency", rows, preamble)


def all_experiments(scale: str = "full") -> List[Section]:
    """Run the whole catalog at the given scale and return the report sections."""
    return [
        experiment_e1_haft_structure(scale),
        experiment_e2_haft_merge(scale),
        experiment_e3_degree_increase(scale),
        experiment_e4_stretch(scale),
        experiment_e5_repair_cost(scale),
        experiment_e6_invariants(scale),
        experiment_e7_lower_bound(scale),
        experiment_e8_paper_figures(scale),
        experiment_e9_healer_comparison(scale),
        experiment_e10_churn(scale),
        experiment_e11_fault_tolerance(scale),
        experiment_e12_recovery_cost(scale),
        experiment_e13_byzantine_containment(scale),
        experiment_e14_concurrent_bursts(scale),
    ]
