"""Regenerate the full experiment report: ``python -m repro.experiments``.

Options
-------
``--scale {smoke,bench,full}``
    Workload size (default ``full``; ``smoke`` finishes in seconds).
``--output PATH``
    Where to write the markdown report (default ``experiments_report.md``
    in the current directory).
"""

from __future__ import annotations

import argparse
import sys
import time

from .catalog import SCALES, all_experiments
from .reporting import write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every experiment of the Forgiving Graph reproduction.",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument("--output", default="experiments_report.md")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    sections = []
    for section in all_experiments(args.scale):
        title = section[0]
        print(f"[repro] finished {title}", file=sys.stderr)
        sections.append(section)
    path = write_report(
        sections,
        args.output,
        title=f"Forgiving Graph reproduction — experiment report (scale={args.scale})",
    )
    elapsed = time.perf_counter() - start
    print(f"[repro] wrote {path} in {elapsed:.1f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
