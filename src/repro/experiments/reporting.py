"""Plain-text tables and CSV output for experiment results.

There is intentionally no plotting dependency: every experiment reports the
series/rows the paper's claims are about as aligned text tables (rendered
into EXPERIMENTS.md) and, optionally, CSV files for downstream plotting.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "rows_to_csv", "write_report"]

Row = Dict[str, object]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}".rstrip("0").rstrip(".") if value != int(value) else str(int(value))
    return str(value)


def format_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render rows as a GitHub-style markdown table.

    ``columns`` fixes the column order (defaulting to the union of keys in
    first-appearance order); missing cells render as empty strings.
    """
    if not rows:
        return f"### {title}\n\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    table: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(cells[i]) for cells in table), default=0))
        for i, col in enumerate(columns)
    ]
    header = "| " + " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns)) + " |"
    divider = "|" + "|".join("-" * (widths[i] + 2) for i in range(len(columns))) + "|"
    body = [
        "| " + " | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))) + " |"
        for cells in table
    ]
    lines = ([f"### {title}", ""] if title else []) + [header, divider] + body + [""]
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row], path: Union[str, Path], columns: Optional[Sequence[str]] = None) -> Path:
    """Write rows to a CSV file; returns the path written."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_report(sections: Iterable[tuple], path: Union[str, Path], title: str = "Experiment report") -> Path:
    """Write a multi-section markdown report.

    ``sections`` is an iterable of ``(section_title, rows)`` or
    ``(section_title, rows, preamble_text)`` tuples.
    """
    path = Path(path)
    parts: List[str] = [f"# {title}", ""]
    for section in sections:
        if len(section) == 3:
            section_title, rows, preamble = section
        else:
            section_title, rows = section
            preamble = ""
        parts.append(f"## {section_title}")
        parts.append("")
        if preamble:
            parts.append(preamble)
            parts.append("")
        parts.append(format_table(rows))
    path.write_text("\n".join(parts))
    return path
