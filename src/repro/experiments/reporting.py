"""Plain-text tables, CSV output and streaming JSONL for experiment results.

There is intentionally no plotting dependency: every experiment reports the
series/rows the paper's claims are about as aligned text tables (rendered
into EXPERIMENTS.md) and, optionally, CSV files for downstream plotting.

For long parallel sweeps the module additionally provides *streaming* JSONL
reporting: :class:`JsonlReporter` appends one JSON object per finished task
as soon as it lands (so a killed sweep loses nothing), and doubles as the
resume checkpoint — reopening the same path skips every task whose key is
already present.  All values pass through :func:`json_safe_value`, so
non-finite floats serialize as the ``"inf"`` / ``"-inf"`` / ``"nan"`` string
sentinels and the stream is always parseable by a strict JSON reader.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "format_table",
    "rows_to_csv",
    "write_report",
    "json_safe_value",
    "json_safe_row",
    "JsonlReporter",
    "read_jsonl",
]

Row = Dict[str, object]

#: Sentinels used for non-finite floats in JSON output (JSON has no Infinity).
_NONFINITE_SENTINELS = {float("inf"): "inf", float("-inf"): "-inf"}


def json_safe_value(value: object) -> object:
    """Return ``value`` unchanged unless it is a non-finite float.

    ``json.dumps(float("inf"))`` emits the literal ``Infinity``, which is not
    JSON and breaks strict parsers; non-finite floats therefore serialize as
    the string sentinels ``"inf"`` / ``"-inf"`` / ``"nan"``.  Numpy scalars
    are unwrapped to plain Python numbers on the way.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            value = value.item()
        except (AttributeError, ValueError):  # pragma: no cover - exotic ducks
            pass
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return _NONFINITE_SENTINELS[value]
    return value


def json_safe_row(row: Row) -> Row:
    """A copy of ``row`` with every value passed through :func:`json_safe_value`."""
    return {key: json_safe_value(value) for key, value in row.items()}


class JsonlReporter:
    """Append-only JSONL result stream doubling as a resumable checkpoint.

    Each call to :meth:`write` appends one JSON object (a flat result row)
    and flushes, so every finished task is durable immediately.  Rows may
    carry a *task key* under ``task_key``; on construction the existing file
    (if any) is scanned and :meth:`is_done` tells sweep drivers which tasks
    can be skipped on resume.

    Use as a context manager::

        with JsonlReporter(path, resume=True) as reporter:
            for task in tasks:
                if reporter.is_done(task.key):
                    continue
                reporter.write(run(task), task_key=task.key)
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self._completed: Set[str] = set()
        #: Rows found in the file at construction time (``resume=True`` only);
        #: kept so resuming consumers do not have to re-parse the stream.
        self.existing_rows: List[Row] = []
        if resume and self.path.exists():
            self.existing_rows = read_jsonl(self.path)
            for row in self.existing_rows:
                key = row.get("task_key")
                if key is not None:
                    self._completed.add(str(key))
        elif self.path.exists():
            self.path.unlink()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a")

    @property
    def completed_keys(self) -> Set[str]:
        """Task keys already present in the stream (from this run or a resumed one)."""
        return set(self._completed)

    def is_done(self, task_key: str) -> bool:
        """True when a row for ``task_key`` is already in the stream."""
        return task_key in self._completed

    def write(self, row: Row, task_key: Optional[str] = None) -> None:
        """Append one result row (JSON-safe, flushed immediately)."""
        payload = json_safe_row(row)
        if task_key is not None:
            payload["task_key"] = task_key
            self._completed.add(task_key)
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlReporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: Union[str, Path]) -> List[Row]:
    """Parse a JSONL stream back into rows (strict JSON; sentinel-encoded infs).

    A checkpoint's *final* line may be truncated when the writing process was
    killed mid-append — exactly the scenario resume exists for — so an
    unparseable trailing line is dropped.  Corruption anywhere else still
    raises.
    """
    lines: List[str] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                lines.append(line)
    rows: List[Row] = []
    for index, line in enumerate(lines):
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break
            raise
    return rows


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}".rstrip("0").rstrip(".") if value != int(value) else str(int(value))
    return str(value)


def format_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render rows as a GitHub-style markdown table.

    ``columns`` fixes the column order (defaulting to the union of keys in
    first-appearance order); missing cells render as empty strings.
    """
    if not rows:
        return f"### {title}\n\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    table: List[List[str]] = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(cells[i]) for cells in table), default=0))
        for i, col in enumerate(columns)
    ]
    header = "| " + " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns)) + " |"
    divider = "|" + "|".join("-" * (widths[i] + 2) for i in range(len(columns))) + "|"
    body = [
        "| " + " | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))) + " |"
        for cells in table
    ]
    lines = ([f"### {title}", ""] if title else []) + [header, divider] + body + [""]
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row], path: Union[str, Path], columns: Optional[Sequence[str]] = None) -> Path:
    """Write rows to a CSV file; returns the path written."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_report(sections: Iterable[tuple], path: Union[str, Path], title: str = "Experiment report") -> Path:
    """Write a multi-section markdown report.

    ``sections`` is an iterable of ``(section_title, rows)`` or
    ``(section_title, rows, preamble_text)`` tuples.
    """
    path = Path(path)
    parts: List[str] = [f"# {title}", ""]
    for section in sections:
        if len(section) == 3:
            section_title, rows, preamble = section
        else:
            section_title, rows = section
            preamble = ""
        parts.append(f"## {section_title}")
        parts.append("")
        if preamble:
            parts.append(preamble)
            parts.append("")
        parts.append(format_table(rows))
    path.write_text("\n".join(parts))
    return path
