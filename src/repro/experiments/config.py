"""Declarative experiment configuration.

Experiments are described as data so that every number in EXPERIMENTS.md can
be traced back to an exact configuration (topology, size, adversary, healer,
seed) and regenerated with one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from ..adversary.strategies import available_deletion_strategies
from ..baselines.registry import available_healers
from ..core.errors import ConfigurationError
from ..distributed.faults import FaultSchedule, FaultSpec
from ..generators.graphs import GraphSpec, available_topologies

__all__ = ["AttackConfig", "ExperimentConfig"]


@dataclass(frozen=True)
class AttackConfig:
    """How the adversary behaves during a run.

    ``delete_fraction`` expresses the attack length as a fraction of the
    initial node count; ``delete_probability`` mixes insertions in
    (``1.0`` = pure deletion attack).  ``fault_preset`` selects the network
    conditions the repair protocol runs under — anything
    :meth:`repro.distributed.faults.FaultSpec.parse` accepts: a named
    :data:`repro.distributed.faults.FAULT_PRESETS` entry, a ``FaultSpec``
    or an explicit ``FaultSchedule`` (meaningful only for the
    message-passing healer, where dropped/delayed/reordered repair messages
    force the reconvergence path).  The value is normalized into the
    :attr:`fault_spec` attribute; preset-named axes derive their seeded
    schedule from the experiment seed, so faulty runs stay deterministic.
    """

    strategy: str = "max_degree"
    delete_fraction: float = 0.5
    delete_probability: float = 1.0
    insertion_degree: int = 3
    min_survivors: int = 2
    fault_preset: Union[str, FaultSpec, FaultSchedule] = "lossless"

    def __post_init__(self) -> None:
        if self.strategy not in available_deletion_strategies():
            raise ConfigurationError(
                f"unknown deletion strategy {self.strategy!r}; "
                f"available: {available_deletion_strategies()}"
            )
        if not 0.0 < self.delete_fraction <= 1.0:
            raise ConfigurationError("delete_fraction must lie in (0, 1]")
        if not 0.0 <= self.delete_probability <= 1.0:
            raise ConfigurationError("delete_probability must lie in [0, 1]")
        if self.insertion_degree < 1:
            raise ConfigurationError("insertion_degree must be at least 1")
        try:
            spec = FaultSpec.parse(self.fault_preset)
        except (ValueError, TypeError) as exc:
            raise ConfigurationError(str(exc)) from None
        # Normalize the field back to its string surface (reports, rows and
        # the describe() output key on the preset name) and keep the typed
        # spec alongside for consumers that materialize schedules.
        object.__setattr__(self, "fault_preset", spec.describe())
        object.__setattr__(self, "fault_spec", spec)

    def steps_for(self, n: int) -> int:
        """Number of adversarial moves for an initial graph of ``n`` nodes."""
        return max(int(round(self.delete_fraction * n)), 1)


@dataclass(frozen=True)
class ExperimentConfig:
    """A complete experiment: topology x attack x healers x seed."""

    name: str
    graph: GraphSpec
    attack: AttackConfig = field(default_factory=AttackConfig)
    healers: Sequence[str] = ("forgiving_graph",)
    seed: int = 0
    #: Cap on BFS sources for stretch measurement (None = exact).
    stretch_sources: Optional[int] = 48

    def __post_init__(self) -> None:
        if self.graph.topology not in available_topologies():
            raise ConfigurationError(
                f"unknown topology {self.graph.topology!r}; available: {available_topologies()}"
            )
        unknown = [h for h in self.healers if h not in available_healers()]
        if unknown:
            raise ConfigurationError(
                f"unknown healers {unknown}; available: {available_healers()}"
            )

    def describe(self) -> Dict[str, object]:
        """Flat description used as the left-hand columns of report tables."""
        description = {
            "experiment": self.name,
            "topology": self.graph.topology,
            "n0": self.graph.n,
            "attack": self.attack.strategy,
            "delete_fraction": self.attack.delete_fraction,
            "delete_probability": self.attack.delete_probability,
            "seed": self.seed,
        }
        if self.attack.fault_preset != "lossless":
            description["fault_preset"] = self.attack.fault_preset
        return description
