"""Clique healing: wire all of the victim's neighbours pairwise.

Distances barely grow (two former neighbours of the victim stay at distance
one), but each repair can add ``d - 1`` edges to every neighbour of a
degree-``d`` victim, so degrees explode under targeted attack — the expensive
end of the degree/stretch trade-off of Theorem 2.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["CliqueHealing"]


class CliqueHealing(SelfHealer):
    """Connect every pair of the deleted node's neighbours."""

    name = "clique_heal"

    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        for u, v in combinations(neighbors, 2):
            self._add_healing_edge(u, v)
