"""Surrogate (star) healing: one neighbour absorbs all of the victim's edges.

The lowest-degree surviving neighbour is chosen as the surrogate and every
other neighbour is connected to it.  Distances stay within a small constant
of the pre-deletion distances, but the surrogate's degree grows by the
victim's degree; an omniscient adversary that keeps deleting the current
surrogate drives some node's degree towards ``n`` — this is exactly the
behaviour the Forgiving Graph's 3x degree bound rules out.
"""

from __future__ import annotations

from typing import List

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["SurrogateHealing"]


class SurrogateHealing(SelfHealer):
    """Reconnect all neighbours of the victim through a single surrogate neighbour."""

    name = "surrogate_heal"

    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        if len(neighbors) < 2:
            return
        surrogate = min(
            neighbors,
            key=lambda v: (self._actual.degree[v] if v in self._actual else 0, repr(v)),
        )
        for neighbor in neighbors:
            if neighbor != surrogate:
                self._add_healing_edge(surrogate, neighbor)
