"""Typed healer construction: :class:`HealerSpec` replaces kwargs forwarding.

The registry's original surface was stringly typed: a healer name plus a
``**options`` bag forwarded blind to whatever constructor the name mapped
to, with the fault axis smuggled through as a pre-built ``fault_schedule``
keyword.  :class:`HealerSpec` is the typed replacement — a frozen value
that validates the name against the registry at construction time, carries
the fault axis as a declarative :class:`~repro.distributed.faults.FaultSpec`
(materialized per build, so RNG state is never shared between sessions),
and rejects fault injection on healers that cannot honour it *before* any
graph is copied.  ``make_healer`` remains as a deprecated shim delegating
here, pinned bit-identical by ``tests/test_service.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import networkx as nx

from ..core.errors import ConfigurationError
from ..distributed.faults import FaultSchedule, FaultSpec

__all__ = ["HealerSpec", "DISTRIBUTED_HEALERS"]

#: Registry names whose constructors understand ``fault_schedule=`` (the
#: message-passing substrate); every other healer is fault-oblivious and a
#: spec naming one with a non-lossless fault axis is rejected eagerly.
DISTRIBUTED_HEALERS = frozenset({"distributed_forgiving_graph"})


@dataclass(frozen=True)
class HealerSpec:
    """A validated, self-contained description of one healer instance.

    Parameters
    ----------
    name:
        Registry name (``repro.baselines.available_healers()`` lists them);
        unknown names raise :class:`~repro.core.errors.ConfigurationError`
        at spec construction, not at build time.
    options:
        Constructor keyword arguments (e.g. ``dense=False`` or
        ``repair_concurrency=4`` for the distributed healer).  Stored as a
        plain dict but treated as immutable; ``fault_schedule`` must travel
        through ``fault``, not here.
    fault:
        The fault axis as anything :meth:`FaultSpec.parse` accepts —
        ``None`` (lossless), a preset string, a ``FaultSchedule`` or a
        ``FaultSpec``.  Non-lossless axes are only legal for healers in
        :data:`DISTRIBUTED_HEALERS`.
    """

    name: str
    options: Dict[str, Any] = field(default_factory=dict)
    fault: FaultSpec = FaultSpec()

    def __init__(
        self,
        name: str,
        options: Optional[Mapping[str, Any]] = None,
        fault: Union[None, str, FaultSchedule, FaultSpec] = None,
    ) -> None:
        from .registry import _HEALERS, available_healers

        if name not in _HEALERS:
            raise ConfigurationError(
                f"unknown healer {name!r}; available: {', '.join(available_healers())}"
            )
        options = dict(options or {})
        if "fault_schedule" in options:
            raise ConfigurationError(
                "pass the fault axis through HealerSpec(fault=...), not "
                "options['fault_schedule'] — the spec owns materialization"
            )
        spec = FaultSpec.parse(fault)
        if not spec.is_lossless and name not in DISTRIBUTED_HEALERS:
            raise ConfigurationError(
                f"healer {name!r} runs on the abstract graph model and cannot "
                "honour a fault schedule; use 'distributed_forgiving_graph' "
                "for fault-injected runs"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "options", options)
        object.__setattr__(self, "fault", spec)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def build(self, graph: nx.Graph, seed: Optional[int] = None):
        """Instantiate the healer on a copy of ``graph``.

        The fault axis is materialized fresh for every build (seeded by the
        spec's own seed, else ``seed``), so two builds from one spec never
        share RNG state — the property the determinism tests pin.
        """
        from .registry import _HEALERS

        factory = _HEALERS[self.name]
        options = dict(self.options)
        schedule = self.fault.build(seed)
        if schedule is not None:
            options["fault_schedule"] = schedule
        return factory(graph.copy(), **options)

    def with_fault(self, fault: Union[None, str, FaultSchedule, FaultSpec]) -> "HealerSpec":
        """A copy of this spec with the fault axis replaced."""
        return HealerSpec(self.name, self.options, fault=fault)

    def with_options(self, **options: Any) -> "HealerSpec":
        """A copy of this spec with extra constructor options merged in."""
        merged = dict(self.options)
        merged.update(options)
        return HealerSpec(self.name, merged, fault=self.fault)

    # ------------------------------------------------------------------ #
    # serialization (the service persists its healer spec in the store)
    # ------------------------------------------------------------------ #
    def to_json(self) -> Dict[str, Any]:
        """Declarative form; raises when the fault axis is an explicit schedule."""
        return {
            "name": self.name,
            "options": dict(self.options),
            "fault": self.fault.to_json(),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "HealerSpec":
        return cls(
            str(payload["name"]),
            payload.get("options") or {},
            fault=FaultSpec.from_json(payload.get("fault") or {"preset": "lossless"}),
        )

    def describe(self) -> str:
        parts = [self.name]
        if self.options:
            parts.append(",".join(f"{k}={v}" for k, v in sorted(self.options.items())))
        if not self.fault.is_lossless:
            parts.append(f"fault={self.fault.describe()}")
        return "/".join(parts)
