"""Cycle healing: wire the victim's neighbours into a ring.

Each repair adds at most two edges per surviving neighbour, so the degree
increase is bounded (additively by 2), but a path between two former
neighbours of the victim can now have to walk half-way around the ring —
repeated deletions compound and the stretch can grow polynomially.  This is
the classic cheap-but-stretchy end of the trade-off that Theorem 2 formalises.
"""

from __future__ import annotations

from typing import List

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["CycleHealing"]


class CycleHealing(SelfHealer):
    """Connect the deleted node's neighbours in a cycle (deterministic order)."""

    name = "cycle_heal"

    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        if len(neighbors) < 2:
            return
        for i, current in enumerate(neighbors):
            nxt = neighbors[(i + 1) % len(neighbors)]
            if len(neighbors) == 2 and i == 1:
                break  # avoid adding the same edge twice for a 2-cycle
            self._add_healing_edge(current, nxt)
