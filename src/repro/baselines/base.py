"""Shared machinery for baseline healers.

:class:`SelfHealer` implements the insert/delete bookkeeping that every
baseline needs — maintaining ``G'`` (insertions only) and the healed graph —
and leaves a single hook, :meth:`SelfHealer._heal`, for the strategy-specific
repair.  The public surface mirrors :class:`repro.core.ForgivingGraph`, so
adversaries, schedules and the experiment runner treat the Forgiving Graph
and every baseline interchangeably.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.errors import (
    DeletedNodeError,
    DuplicateNodeError,
    InvalidEdgeError,
    UnknownNodeError,
)
from ..core.ports import NodeId

__all__ = ["SelfHealer"]


class SelfHealer(abc.ABC):
    """Base class for baseline self-healing strategies.

    Subclasses implement :meth:`_heal`, which receives the just-deleted node
    and the neighbours it had *in the healed graph* at deletion time, and
    may add edges between surviving nodes (never new nodes — the model of
    Figure 1 only allows edge additions during recovery).
    """

    #: Short machine-readable name used in experiment tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self._g_prime = nx.Graph()
        self._actual = nx.Graph()
        self._alive: Set[NodeId] = set()
        self._deleted: Set[NodeId] = set()

    # ------------------------------------------------------------------ #
    # constructors (mirroring ForgivingGraph)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: nx.Graph, **kwargs) -> "SelfHealer":
        """Build a healer whose initial network is ``graph``."""
        healer = cls(**kwargs)
        for node in graph.nodes:
            healer._add_initial_node(node)
        for u, v in graph.edges:
            healer._add_initial_edge(u, v)
        return healer

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = (), **kwargs
    ) -> "SelfHealer":
        """Build a healer whose initial network has the given edges."""
        healer = cls(**kwargs)
        for node in nodes:
            healer._add_initial_node(node)
        for u, v in edges:
            healer._add_initial_node(u)
            healer._add_initial_node(v)
            healer._add_initial_edge(u, v)
        return healer

    def _add_initial_node(self, node: NodeId) -> None:
        if node in self._g_prime:
            return
        self._g_prime.add_node(node)
        self._actual.add_node(node)
        self._alive.add(node)

    def _add_initial_edge(self, u: NodeId, v: NodeId) -> None:
        if u == v:
            raise InvalidEdgeError(f"self-loop ({u!r}, {v!r}) not allowed")
        self._g_prime.add_edge(u, v)
        self._actual.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # healer protocol
    # ------------------------------------------------------------------ #
    @property
    def alive_nodes(self) -> Set[NodeId]:
        """A copy of the set of surviving node identifiers."""
        return set(self._alive)

    @property
    def deleted_nodes(self) -> Set[NodeId]:
        """A copy of the set of deleted node identifiers."""
        return set(self._deleted)

    @property
    def num_alive(self) -> int:
        """Number of surviving nodes."""
        return len(self._alive)

    @property
    def nodes_ever(self) -> int:
        """Total number of nodes ever seen (the ``n`` of the theorems)."""
        return self._g_prime.number_of_nodes()

    def is_alive(self, node: NodeId) -> bool:
        """True when ``node`` is currently alive."""
        return node in self._alive

    def g_prime_view(self) -> nx.Graph:
        """Return a copy of ``G'`` (insertions only, ignoring deletions)."""
        return self._g_prime.copy()

    def g_prime_graph_view(self) -> nx.Graph:
        """Zero-copy read-only view of ``G'`` (stays in sync with the healer)."""
        return self._g_prime.copy(as_view=True)

    def g_prime_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in ``G'``."""
        if node not in self._g_prime:
            raise UnknownNodeError(node, "g_prime_degree")
        return self._g_prime.degree[node]

    def actual_graph(self) -> nx.Graph:
        """Return a copy of the healed graph maintained by this strategy."""
        return self._actual.copy()

    def actual_view(self) -> nx.Graph:
        """Zero-copy read-only view of the healed graph (stays in sync)."""
        return self._actual.copy(as_view=True)

    def actual_degree(self, node: NodeId) -> int:
        """Degree of ``node`` in the healed graph."""
        if node not in self._alive:
            raise UnknownNodeError(node, "actual_degree")
        return self._actual.degree[node]

    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        """Adversarial insertion: add ``node`` with edges to alive ``attach_to`` nodes."""
        if node in self._g_prime:
            if node in self._deleted:
                raise DeletedNodeError(node, "node identifiers cannot be reused")
            raise DuplicateNodeError(node)
        neighbors = list(dict.fromkeys(attach_to))
        for neighbor in neighbors:
            if neighbor == node:
                raise InvalidEdgeError(f"cannot attach {node!r} to itself")
            if neighbor not in self._alive:
                raise UnknownNodeError(neighbor, "insertion must attach to alive nodes")
        self._g_prime.add_node(node)
        self._actual.add_node(node)
        self._alive.add(node)
        for neighbor in neighbors:
            self._g_prime.add_edge(node, neighbor)
            self._actual.add_edge(node, neighbor)

    def delete(self, node: NodeId) -> None:
        """Adversarial deletion followed by this strategy's repair."""
        if node not in self._g_prime:
            raise UnknownNodeError(node, "delete")
        if node not in self._alive:
            raise DeletedNodeError(node, "delete")
        neighbors = sorted(self._actual.neighbors(node), key=lambda n: (type(n).__name__, repr(n)))
        self._actual.remove_node(node)
        self._alive.discard(node)
        self._deleted.add(node)
        self._heal(node, neighbors)

    # ------------------------------------------------------------------ #
    # strategy hook
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        """Repair the healed graph after ``deleted`` vanished.

        ``neighbors`` lists the nodes that were adjacent to ``deleted`` in
        the healed graph (all of them are still alive).  Implementations may
        only add edges between alive nodes via :meth:`_add_healing_edge`.
        """

    def _add_healing_edge(self, u: NodeId, v: NodeId) -> None:
        """Add a repair edge to the healed graph (ignored for self-loops/duplicates)."""
        if u == v:
            return
        if u not in self._alive or v not in self._alive:
            raise UnknownNodeError(u if u not in self._alive else v, "healing edge endpoint")
        self._actual.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # shared metrics
    # ------------------------------------------------------------------ #
    def degree_increase_factor(self, node: Optional[NodeId] = None) -> float:
        """Maximum ``deg(v, healed) / deg(v, G')`` over alive nodes (or one node)."""
        nodes = [node] if node is not None else list(self._alive)
        worst = 0.0
        for v in nodes:
            d_prime = self._g_prime.degree[v] if v in self._g_prime else 0
            if d_prime == 0:
                continue
            d_actual = self._actual.degree[v] if v in self._actual else 0
            worst = max(worst, d_actual / d_prime)
        return worst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(alive={self.num_alive}, ever={self.nodes_ever})"
