"""Healer registry: build any healer (Forgiving Graph or baseline) by name.

The experiment harness describes runs as data; this registry is the single
place that maps the string names used in experiment configurations and
benchmark tables onto healer classes.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List

import networkx as nx

from ..core.forgiving_graph import ForgivingGraph
from ..distributed.simulator import DistributedForgivingGraph
from .clique_heal import CliqueHealing
from .cycle_heal import CycleHealing
from .forgiving_tree import ForgivingTreeHealing
from .no_heal import NoHealing
from .surrogate_heal import SurrogateHealing
from .unmerged_rt import UnmergedRTHealing

__all__ = ["available_healers", "make_healer"]


_HEALERS: Dict[str, Callable[..., object]] = {
    "forgiving_graph": lambda graph, **options: ForgivingGraph.from_graph(graph, **options),
    "distributed_forgiving_graph": lambda graph, **options: DistributedForgivingGraph.from_graph(
        graph, **options
    ),
    "forgiving_tree": lambda graph, **options: ForgivingTreeHealing.from_graph(graph, **options),
    "no_heal": lambda graph, **options: NoHealing.from_graph(graph, **options),
    "cycle_heal": lambda graph, **options: CycleHealing.from_graph(graph, **options),
    "clique_heal": lambda graph, **options: CliqueHealing.from_graph(graph, **options),
    "surrogate_heal": lambda graph, **options: SurrogateHealing.from_graph(graph, **options),
    "unmerged_rt": lambda graph, **options: UnmergedRTHealing.from_graph(graph, **options),
}


def available_healers() -> List[str]:
    """Names accepted by :func:`make_healer`."""
    return sorted(_HEALERS)


def make_healer(name: str, graph: nx.Graph, **options):
    """Instantiate the named healer on a copy of ``graph`` (deprecated shim).

    The typed construction path is :class:`repro.baselines.HealerSpec`:
    ``HealerSpec(name, options, fault=...).build(graph)``.  This shim keeps
    the historical kwargs-forwarding surface alive for external callers —
    it lifts a ``fault_schedule`` keyword into the spec's fault axis and
    delegates, so both paths construct bit-identical healers (pinned by
    ``tests/test_service.py``) — but new code should build a spec.

    ``"forgiving_graph"`` builds the paper's algorithm
    (:class:`repro.core.ForgivingGraph`); ``"distributed_forgiving_graph"``
    builds the same algorithm on the message-passing substrate
    (:class:`repro.distributed.DistributedForgivingGraph`, whose deletions
    additionally yield Lemma 4 cost reports); every other name builds the
    corresponding baseline from :mod:`repro.baselines`.

    Extra keyword ``options`` are forwarded to the healer's constructor;
    a healer that does not understand an option raises its natural
    ``TypeError`` rather than ignoring it silently.
    """
    from .spec import HealerSpec

    warnings.warn(
        "make_healer(name, graph, **options) is deprecated; build a typed "
        "HealerSpec(name, options, fault=...) and call .build(graph)",
        DeprecationWarning,
        stacklevel=2,
    )
    fault = options.pop("fault_schedule", None)
    return HealerSpec(name, options, fault=fault).build(graph)
