"""Baseline self-healing strategies.

The introduction of the paper positions the Forgiving Graph against two kinds
of alternatives: its predecessor, the *Forgiving Tree* (Hayes, Rustagi, Saia,
Trehan, PODC 2008), and naive healing rules that trade degree against
stretch in the wrong way.  This package implements those comparators behind
the same interface as :class:`repro.core.ForgivingGraph`, so that any
experiment can be re-run against any healer:

* :class:`NoHealing` — remove the node, add nothing (connectivity may break);
* :class:`CycleHealing` — wire the victim's neighbours into a cycle
  (degree +2, but stretch can grow linearly);
* :class:`CliqueHealing` — wire all neighbours pairwise (stretch stays tiny,
  degrees explode);
* :class:`SurrogateHealing` — connect every neighbour to one surrogate
  neighbour (a single node absorbs the whole degree hit);
* :class:`ForgivingTreeHealing` — the PODC'08 balanced-binary-tree repair;
* :class:`UnmergedRTHealing` — an *ablation* of the Forgiving Graph itself:
  reconstruction trees are built per deletion but never merged, isolating
  the contribution of the haft Strip/Merge machinery.

All of them answer to the duck-typed healer protocol used by the adversaries
and the experiment harness (``insert``, ``delete``, ``actual_graph``,
``g_prime_view``, ``alive_nodes`` ...).
"""

from .base import SelfHealer
from .clique_heal import CliqueHealing
from .cycle_heal import CycleHealing
from .forgiving_tree import ForgivingTreeHealing
from .no_heal import NoHealing
from .registry import available_healers, make_healer
from .spec import DISTRIBUTED_HEALERS, HealerSpec
from .surrogate_heal import SurrogateHealing
from .unmerged_rt import UnmergedRTHealing

__all__ = [
    "SelfHealer",
    "NoHealing",
    "CycleHealing",
    "CliqueHealing",
    "SurrogateHealing",
    "ForgivingTreeHealing",
    "UnmergedRTHealing",
    "available_healers",
    "make_healer",
    "HealerSpec",
    "DISTRIBUTED_HEALERS",
]
