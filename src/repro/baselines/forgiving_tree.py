"""The Forgiving Tree baseline (Hayes, Rustagi, Saia, Trehan, PODC 2008).

The Forgiving Tree is the predecessor of the Forgiving Graph: it maintains a
*spanning tree* of the network and, when a node is deleted, splices a
balanced binary tree of the victim's tree-neighbours into the hole, with the
internal positions of that balanced tree simulated by the victim's children.
Its guarantees are

* degree increase bounded by a small *additive* constant (+3), and
* diameter increase bounded by a multiplicative ``O(log Delta)`` factor,

but — unlike the Forgiving Graph — it has no stretch guarantee relative to
``G'``, no support for adversarial insertions interleaved with deletions, and
it needs an initialization phase.  The comparison experiment (E9 in
DESIGN.md) reproduces exactly this qualitative gap.

Implementation notes (documented substitution)
-----------------------------------------------
The original Forgiving Tree is specified through per-node "wills" prepared
ahead of time; no public implementation exists.  This baseline reproduces
its healing rule at the graph level:

* a spanning tree of the initial network is maintained (BFS tree per
  connected component); inserted nodes attach to the tree through their
  first attachment edge;
* when a node dies, its tree-neighbours are re-joined by a balanced binary
  tree; the internal positions are assigned to tree-neighbours that do not
  yet hold a helper role (falling back to the least-loaded neighbour when
  all of them already do, at which point the additive bound can degrade —
  the original avoids this with the will/heir machinery);
* the healed graph exposed to the experiments is the union of the surviving
  ``G'`` edges and the tree-repair edges, exactly like every other healer.

This preserves the behaviour the comparison cares about (small degree
overhead, compounding local distance blow-up, no ``G'``-stretch guarantee)
without reproducing the full will bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["ForgivingTreeHealing"]


class ForgivingTreeHealing(SelfHealer):
    """Spanning-tree self-healing with balanced-binary-tree splicing."""

    name = "forgiving_tree"

    def __init__(self) -> None:
        super().__init__()
        #: The maintained spanning forest (a subgraph of the healed graph).
        self._tree = nx.Graph()
        #: Helper-role counts: how many internal positions each node simulates.
        self._roles: Dict[NodeId, int] = {}
        self._tree_built = False
        self._pending_tree_neighbors: Optional[List[NodeId]] = None

    # ------------------------------------------------------------------ #
    # spanning-tree maintenance
    # ------------------------------------------------------------------ #
    def _ensure_tree(self) -> None:
        """Build the initial spanning forest lazily (the paper's preprocessing phase)."""
        if self._tree_built:
            return
        self._tree = nx.Graph()
        self._tree.add_nodes_from(self._actual.nodes)
        for component in nx.connected_components(self._actual):
            root = min(component, key=lambda n: (type(n).__name__, repr(n)))
            for u, v in nx.bfs_edges(self._actual, root):
                self._tree.add_edge(u, v)
        self._tree_built = True

    def spanning_tree(self) -> nx.Graph:
        """Return a copy of the maintained spanning forest (for tests / inspection)."""
        self._ensure_tree()
        return self._tree.copy()

    def helper_roles(self) -> Dict[NodeId, int]:
        """Return the number of helper positions each alive node currently simulates."""
        return {node: count for node, count in self._roles.items() if node in self._alive}

    # ------------------------------------------------------------------ #
    # overridden operations
    # ------------------------------------------------------------------ #
    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> None:
        self._ensure_tree()
        super().insert(node, attach_to=attach_to)
        self._tree.add_node(node)
        attachments = [a for a in dict.fromkeys(attach_to)]
        if attachments:
            self._tree.add_edge(node, attachments[0])

    def delete(self, node: NodeId) -> None:
        self._ensure_tree()
        if node in self._tree:
            self._pending_tree_neighbors = sorted(
                self._tree.neighbors(node), key=lambda n: (type(n).__name__, repr(n))
            )
            self._tree.remove_node(node)
        else:
            self._pending_tree_neighbors = []
        self._roles.pop(node, None)
        super().delete(node)

    # ------------------------------------------------------------------ #
    # the Forgiving Tree repair
    # ------------------------------------------------------------------ #
    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        tree_neighbors = self._pending_tree_neighbors or []
        self._pending_tree_neighbors = None
        if len(tree_neighbors) < 2:
            return

        # Pair the victim's tree-neighbours level by level, exactly like the
        # balanced Reconstruction Tree of the Forgiving Tree paper.  The
        # internal position created by joining a pair is played by whichever
        # of the two representatives holds fewer helper roles, so exactly one
        # repair edge is added per join, the spanning structure stays a tree,
        # and two former tree-neighbours end up at distance O(log d) of each
        # other.
        level: List[NodeId] = list(tree_neighbors)
        while len(level) > 1:
            next_level: List[NodeId] = []
            for i in range(0, len(level) - 1, 2):
                left, right = level[i], level[i + 1]
                simulator = min(
                    (left, right), key=lambda v: (self._roles.get(v, 0), repr(v))
                )
                self._add_tree_repair_edge(left, right)
                self._roles[simulator] = self._roles.get(simulator, 0) + 1
                next_level.append(simulator)
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level

    def _add_tree_repair_edge(self, u: NodeId, v: NodeId) -> None:
        if u == v:
            return
        self._add_healing_edge(u, v)
        self._tree.add_edge(u, v)
