"""The no-healing baseline: delete the node, add nothing.

This is the "do nothing" comparator: degrees never increase (factor 1), but
connectivity and stretch have no guarantee at all — deleting a cut vertex
disconnects the survivors, which the experiments report as infinite stretch.
"""

from __future__ import annotations

from typing import List

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["NoHealing"]


class NoHealing(SelfHealer):
    """Perform no repair after deletions."""

    name = "no_heal"

    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        # Intentionally empty: the whole point of this baseline is that the
        # adversary's damage is left in place.
        return
