"""Ablation baseline: reconstruction trees without the haft Merge step.

The Forgiving Graph's central design choice is that the reconstruction trees
of successive deletions *merge* (via Strip/Merge on half-full trees), so a
processor ends up simulating at most one helper node per ``G'`` edge no
matter how long the attack lasts.  This ablation removes exactly that step:
every deletion builds a fresh balanced binary tree over the victim's current
neighbours in the healed graph, with internal positions assigned to
least-loaded neighbours, and never merges it with the structures left by
earlier deletions.

Under a sustained targeted attack the same survivors keep being drafted as
internal nodes of new trees, so their degree grows with the length of the
attack instead of staying within a constant factor — the experiment
``benchmarks/bench_ablation_merge.py`` and the E9 comparison show the gap.
This isolates the contribution of the haft-merge machinery, which is the
ablation DESIGN.md calls out.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.ports import NodeId
from .base import SelfHealer

__all__ = ["UnmergedRTHealing"]


class UnmergedRTHealing(SelfHealer):
    """Balanced-binary-tree repair over healed-graph neighbours, without merging."""

    name = "unmerged_rt"

    def __init__(self) -> None:
        super().__init__()
        #: How many internal (virtual) positions each node currently plays.
        self._load: Dict[NodeId, int] = {}

    def _heal(self, deleted: NodeId, neighbors: List[NodeId]) -> None:
        self._load.pop(deleted, None)
        if len(neighbors) < 2:
            return
        # Internal positions go to the least-loaded neighbours; each position
        # connects the representatives of the two subtrees it joins.  Unlike
        # the Forgiving Graph there is no notion of ports or representatives
        # carried over from earlier repairs, so load accumulates.
        pool = sorted(neighbors, key=lambda v: (self._load.get(v, 0), repr(v)))
        pool_index = 0

        def next_simulator() -> NodeId:
            nonlocal pool_index
            simulator = pool[pool_index % len(pool)]
            pool_index += 1
            self._load[simulator] = self._load.get(simulator, 0) + 1
            return simulator

        level: List[NodeId] = list(neighbors)
        while len(level) > 1:
            next_level: List[NodeId] = []
            for i in range(0, len(level) - 1, 2):
                left, right = level[i], level[i + 1]
                simulator = next_simulator()
                self._add_healing_edge(simulator, left)
                self._add_healing_edge(simulator, right)
                next_level.append(simulator)
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
