"""Initial-topology generators.

Every generator returns a connected :class:`networkx.Graph` with integer node
labels ``0 .. n-1`` so that experiments can insert fresh nodes with labels
``>= n`` without collisions.  Randomised generators accept either a seed or a
:class:`numpy.random.Generator` and are deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Union

import networkx as nx
import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "GraphSpec",
    "make_graph",
    "available_topologies",
    "star_graph",
    "path_graph",
    "ring_graph",
    "grid_graph",
    "binary_tree_graph",
    "erdos_renyi_graph",
    "power_law_graph",
    "random_regular_graph",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _require_positive(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise ConfigurationError(f"graph size must be at least {minimum}, got {n}")


def star_graph(n: int, seed: SeedLike = None) -> nx.Graph:
    """Star on ``n`` nodes: node 0 is the hub (the Theorem 2 lower-bound topology)."""
    _require_positive(n, 2)
    return nx.star_graph(n - 1)


def path_graph(n: int, seed: SeedLike = None) -> nx.Graph:
    """Simple path ``0 - 1 - ... - n-1``; the worst case for naive clique healing."""
    _require_positive(n, 2)
    return nx.path_graph(n)


def ring_graph(n: int, seed: SeedLike = None) -> nx.Graph:
    """Cycle on ``n`` nodes."""
    _require_positive(n, 3)
    return nx.cycle_graph(n)


def grid_graph(n: int, seed: SeedLike = None) -> nx.Graph:
    """2-D grid with roughly ``n`` nodes (relabelled to consecutive integers)."""
    _require_positive(n, 4)
    side = max(2, int(round(np.sqrt(n))))
    grid = nx.grid_2d_graph(side, side)
    return nx.convert_node_labels_to_integers(grid, ordering="sorted")


def binary_tree_graph(n: int, seed: SeedLike = None) -> nx.Graph:
    """Complete-ish binary tree on ``n`` nodes (node 0 is the root)."""
    _require_positive(n, 2)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child in range(1, n):
        graph.add_edge(child, (child - 1) // 2)
    return graph


def erdos_renyi_graph(n: int, seed: SeedLike = None, avg_degree: float = 6.0) -> nx.Graph:
    """Connected Erdős–Rényi graph with expected average degree ``avg_degree``.

    Disconnected samples are patched by linking each extra component to the
    giant component with one edge, which keeps the degree distribution
    essentially unchanged while honouring the paper's assumption that ``G_0``
    is connected.
    """
    _require_positive(n, 2)
    rng = _rng(seed)
    p = min(1.0, avg_degree / max(n - 1, 1))
    graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31 - 1)))
    return _ensure_connected(graph, rng)


def power_law_graph(n: int, seed: SeedLike = None, attachment: int = 3) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    This is the canonical model of the peer-to-peer / infrastructure networks
    that motivate the paper, and the topology on which targeted (max-degree)
    attacks are most damaging.
    """
    _require_positive(n, 3)
    m = min(attachment, n - 1)
    rng = _rng(seed)
    return nx.barabasi_albert_graph(n, m, seed=int(rng.integers(0, 2**31 - 1)))


def random_regular_graph(n: int, seed: SeedLike = None, degree: int = 4) -> nx.Graph:
    """Connected random ``degree``-regular graph."""
    _require_positive(n, degree + 1)
    rng = _rng(seed)
    if (n * degree) % 2 == 1:
        n += 1
    graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(0, 2**31 - 1)))
    return _ensure_connected(graph, rng)


def _ensure_connected(graph: nx.Graph, rng: np.random.Generator) -> nx.Graph:
    if graph.number_of_nodes() == 0 or nx.is_connected(graph):
        return graph
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    anchor_pool = list(components[0])
    for component in components[1:]:
        u = list(component)[int(rng.integers(0, len(component)))]
        v = anchor_pool[int(rng.integers(0, len(anchor_pool)))]
        graph.add_edge(u, v)
        anchor_pool.extend(component)
    return graph


_TOPOLOGIES: Dict[str, Callable[..., nx.Graph]] = {
    "star": star_graph,
    "path": path_graph,
    "ring": ring_graph,
    "grid": grid_graph,
    "binary_tree": binary_tree_graph,
    "erdos_renyi": erdos_renyi_graph,
    "power_law": power_law_graph,
    "random_regular": random_regular_graph,
}


def available_topologies() -> list:
    """Names accepted by :func:`make_graph` (and the experiment configs)."""
    return sorted(_TOPOLOGIES)


@dataclass(frozen=True)
class GraphSpec:
    """Declarative description of an initial topology.

    Used by the experiment harness so that a whole sweep can be described as
    data (and recorded alongside its results).
    """

    topology: str
    n: int
    params: Dict[str, float] = field(default_factory=dict)

    def build(self, seed: SeedLike = None) -> nx.Graph:
        """Instantiate the topology."""
        return make_graph(self.topology, self.n, seed=seed, **self.params)

    def label(self) -> str:
        """Short human-readable label for tables."""
        return f"{self.topology}(n={self.n})"


def make_graph(topology: str, n: int, seed: SeedLike = None, **params) -> nx.Graph:
    """Build a named topology.

    Parameters
    ----------
    topology:
        One of :func:`available_topologies`.
    n:
        Target number of nodes.
    seed:
        Seed or generator for the randomised topologies.
    params:
        Extra keyword arguments forwarded to the generator
        (e.g. ``avg_degree`` for ``erdos_renyi``, ``attachment`` for
        ``power_law``, ``degree`` for ``random_regular``).
    """
    try:
        generator = _TOPOLOGIES[topology]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {topology!r}; available: {', '.join(available_topologies())}"
        ) from None
    return generator(n, seed=seed, **params)
