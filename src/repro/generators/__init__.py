"""Workload generators: initial topologies for the experiments.

The paper's model starts from an arbitrary connected graph ``G_0``
(Section 2).  The generators here produce the topologies used throughout the
benchmarks — the adversarially bad cases (star, path) as well as the
peer-to-peer style topologies the introduction motivates (power-law,
Erdős–Rényi, random regular, grid, tree, ring).
"""

from .graphs import (
    GraphSpec,
    available_topologies,
    binary_tree_graph,
    erdos_renyi_graph,
    grid_graph,
    make_graph,
    path_graph,
    power_law_graph,
    random_regular_graph,
    ring_graph,
    star_graph,
)

__all__ = [
    "GraphSpec",
    "available_topologies",
    "make_graph",
    "star_graph",
    "path_graph",
    "ring_graph",
    "grid_graph",
    "binary_tree_graph",
    "erdos_renyi_graph",
    "power_law_graph",
    "random_regular_graph",
]
