"""Typed configuration for the long-lived healer service.

:class:`ServiceConfig` is the top of the typed-config stack introduced by
the api_redesign: it composes a :class:`~repro.generators.graphs.GraphSpec`
(the genesis topology), a :class:`~repro.baselines.HealerSpec` (which
healer, with which options) and a :class:`~repro.distributed.faults
.FaultSpec` (the network conditions) into one frozen, JSON-round-trippable
value.  The service persists it in the checkpoint store's ``meta`` table,
so a restarted daemon reconstructs *exactly* the configuration the crashed
one ran — which is why every axis here must be declarative: explicit
:class:`FaultSchedule` objects carry live RNG state and are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from ..baselines.spec import DISTRIBUTED_HEALERS, HealerSpec
from ..core.errors import ConfigurationError
from ..distributed.faults import FaultSchedule, FaultSpec
from ..generators.graphs import GraphSpec, available_topologies

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a healer daemon needs to run (and re-run after a crash).

    Parameters
    ----------
    graph:
        The genesis topology spec (built once, at first start; restarts
        load the genesis from the store instead of rebuilding).
    healer:
        The healer to run.  The service drives ``delete_batch`` waves and
        the digest-recovery rejoin path, so only healers in
        :data:`~repro.baselines.DISTRIBUTED_HEALERS` are legal.
    fault:
        Declarative fault axis — anything :meth:`FaultSpec.parse` accepts
        *except* an explicit ``FaultSchedule`` (live RNG state does not
        survive a crash, so the service only accepts preset specs it can
        persist and re-materialize deterministically).
    seed:
        Master seed: genesis build, fault materialization and the demo
        churn generators all derive from it.
    checkpoint_every:
        Checkpoint cadence in *applied operations*; the daemon writes a
        checkpoint whenever this many ops have been applied since the last
        one (0 disables periodic checkpoints — only explicit calls write).
    batch_window:
        Admission window: up to this many consecutive journalled deletions
        are grouped into one ``delete_batch`` wave (1 = sequential path).
    latency_window:
        Ring-buffer depth of the live repair-latency percentile tracker.
    """

    graph: GraphSpec = field(default_factory=lambda: GraphSpec("erdos_renyi", 48))
    healer: HealerSpec = field(
        default_factory=lambda: HealerSpec("distributed_forgiving_graph")
    )
    fault: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 0
    checkpoint_every: int = 16
    batch_window: int = 4
    latency_window: int = 256

    def __init__(
        self,
        graph: Optional[GraphSpec] = None,
        healer: Union[None, str, HealerSpec] = None,
        fault: Union[None, str, FaultSpec, FaultSchedule] = None,
        seed: int = 0,
        checkpoint_every: int = 16,
        batch_window: int = 4,
        latency_window: int = 256,
    ) -> None:
        graph = graph if graph is not None else GraphSpec("erdos_renyi", 48)
        if graph.topology not in available_topologies():
            raise ConfigurationError(
                f"unknown topology {graph.topology!r}; available: {available_topologies()}"
            )
        if isinstance(healer, str):
            healer = HealerSpec(healer)
        elif healer is None:
            healer = HealerSpec("distributed_forgiving_graph")
        if healer.name not in DISTRIBUTED_HEALERS:
            raise ConfigurationError(
                f"the healer service drives delete_batch waves and digest "
                f"recovery; healer {healer.name!r} has no network — use one "
                f"of {sorted(DISTRIBUTED_HEALERS)}"
            )
        try:
            fault_spec = FaultSpec.parse(fault, seed=seed)
        except (ValueError, TypeError) as exc:
            raise ConfigurationError(str(exc)) from None
        if fault_spec.schedule is not None:
            raise ConfigurationError(
                "ServiceConfig requires a declarative fault axis (preset + "
                "seed): an explicit FaultSchedule carries live RNG state "
                "that cannot be persisted across a crash"
            )
        # The healer spec's own fault axis must not compete with the
        # service-level one; the service owns materialization.
        if not healer.fault.is_lossless:
            raise ConfigurationError(
                "pass the fault axis through ServiceConfig(fault=...), not "
                "through the healer spec — the service persists and "
                "re-materializes it on restart"
            )
        if checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if batch_window < 1:
            raise ConfigurationError("batch_window must be >= 1")
        if latency_window < 1:
            raise ConfigurationError("latency_window must be >= 1")
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "healer", healer)
        object.__setattr__(self, "fault", fault_spec)
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "checkpoint_every", int(checkpoint_every))
        object.__setattr__(self, "batch_window", int(batch_window))
        object.__setattr__(self, "latency_window", int(latency_window))

    # ------------------------------------------------------------------ #
    # serialization (persisted in the store's meta table)
    # ------------------------------------------------------------------ #
    def to_json(self) -> Dict[str, Any]:
        return {
            "graph": {
                "topology": self.graph.topology,
                "n": self.graph.n,
                "params": dict(self.graph.params),
            },
            "healer": self.healer.to_json(),
            "fault": self.fault.to_json(),
            "seed": self.seed,
            "checkpoint_every": self.checkpoint_every,
            "batch_window": self.batch_window,
            "latency_window": self.latency_window,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ServiceConfig":
        graph_payload = payload["graph"]
        return cls(
            graph=GraphSpec(
                topology=str(graph_payload["topology"]),
                n=int(graph_payload["n"]),
                params=dict(graph_payload.get("params") or {}),
            ),
            healer=HealerSpec.from_json(payload["healer"]),
            fault=FaultSpec.from_json(payload["fault"]),
            seed=int(payload.get("seed", 0)),
            checkpoint_every=int(payload.get("checkpoint_every", 16)),
            batch_window=int(payload.get("batch_window", 4)),
            latency_window=int(payload.get("latency_window", 256)),
        )

    def describe(self) -> str:
        return (
            f"{self.graph.label()}/{self.healer.describe()}"
            f"/fault={self.fault.describe()}/seed={self.seed}"
        )
