"""The long-lived healer service: durable churn, checkpoints, live metrics.

Everything else in the repository is batch — build a graph, run an attack,
exit.  This package runs the distributed Forgiving Graph as a *service*:
:class:`HealerDaemon` accepts concurrent churn streams through
:class:`ServiceClient` handles, journals every operation durably before
acknowledging it, applies deletions through the PR 8 ``delete_batch``
admission path, checkpoints the full distributed state to sqlite
(:mod:`repro.service.store`), and exposes live repair-latency percentiles,
recovery costs and store sizes over a JSON status endpoint
(:mod:`repro.service.metrics`).  The typed configuration surface
(:class:`ServiceConfig`, composing :class:`~repro.baselines.HealerSpec` and
:class:`~repro.distributed.faults.FaultSpec`) is JSON-round-trippable and
persisted in the store, so a restarted daemon reconstructs exactly the
configuration the crashed one ran.

Crash-recover is the point: ``kill -9`` mid-churn then
:meth:`HealerDaemon.restore` replays the journal around the last
checkpoint and certifies the result against the oracle, and
:meth:`HealerDaemon.rejoin_stale` restarts a repair participant from a
stale checkpoint image mid-repair — a digest divergence the PR 5 gossip
recovery heals with real retransmissions.  ``scripts/healerd.py`` is the
process entry point; ``examples/service_demo.py`` walks the whole story.
"""

from .config import ServiceConfig
from .daemon import HealerDaemon, RejoinReport, RestartReport, ServiceClient
from .metrics import ServiceMetrics, StatusServer
from .store import CheckpointStore, CheckpointInfo, JournalOp, SCHEMA_VERSION

__all__ = [
    "ServiceConfig",
    "HealerDaemon",
    "ServiceClient",
    "RestartReport",
    "RejoinReport",
    "ServiceMetrics",
    "StatusServer",
    "CheckpointStore",
    "CheckpointInfo",
    "JournalOp",
    "SCHEMA_VERSION",
]
