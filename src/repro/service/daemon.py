"""The long-lived healer daemon: churn intake, checkpoints, crash-recover.

:class:`HealerDaemon` turns the batch-mode distributed healer into a
service.  Clients (:class:`ServiceClient`) submit insert/delete operations;
every submission is journalled durably *before* it is acknowledged, then
:meth:`HealerDaemon.pump` applies the backlog — consecutive deletions are
grouped into ``delete_batch`` admission waves (the PR 8 concurrent path),
inserts ride individually — and periodically checkpoints the full
distributed state (Table 1 records, sourced links, accountability
transcript, census) through :class:`~repro.service.store.CheckpointStore`.

Crash-recover is real, twice over:

* **Process crash** — ``kill -9`` mid-churn loses nothing durable.
  :meth:`HealerDaemon.restore` replays the journal prefix up to the last
  checkpoint *oracle-only* (the engine is deterministic given the
  engine-application order the journal's ``apply_rank`` column records),
  rebuilds the network verbatim from the checkpoint tables, then replays
  the suffix — the ops the crash interrupted — through the full
  message-native path, and certifies the result (``reconverge`` +
  ``audit_reference`` + ``verify_consistency``).

* **Stale-processor rejoin** — :meth:`HealerDaemon.rejoin_stale` restarts
  one repair participant from the latest checkpoint image *mid-repair*:
  the records it re-reads predate the repair it just took part in, which
  is exactly a digest divergence for the PR 5 gossip recovery to heal.
  The rollback is scoped to what the interrupted repair wrote (its helper
  assignment, ``rt_parent`` and ``representative`` rewires); the repair
  context itself survives the restart — a rejoiner that answers digest
  requests is how the protocol distinguishes a *stale* peer from a *dead*
  one (a rejoiner that lost its context entirely looks crashed, and
  recovery converges around it instead, the PR 5 crash tests' territory).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import ConfigurationError, ForgivingGraphError
from ..core.forgiving_graph import ForgivingGraph
from ..core.ports import NodeId
from ..distributed.simulator import DistributedForgivingGraph
from .config import ServiceConfig
from .metrics import ServiceMetrics, StatusServer
from .store import CheckpointStore, JournalOp

__all__ = ["HealerDaemon", "ServiceClient", "RestartReport", "RejoinReport"]


@dataclass(frozen=True)
class RestartReport:
    """What a :meth:`HealerDaemon.restore` did and how it certified itself."""

    #: Journal seq of the checkpoint the restore loaded (0 = genesis only).
    checkpoint_seq: int
    #: Ops replayed oracle-only (the checkpoint prefix).
    prefix_ops: int
    #: Ops replayed through the full message-native path (the crash suffix).
    suffix_ops: int
    converged: bool
    #: ``audit_reference()`` came back empty after the suffix replay.
    audit_clean: bool
    #: ``verify_consistency()`` passed (records/links/census match the oracle).
    verified: bool


@dataclass(frozen=True)
class RejoinReport:
    """One stale-checkpoint rejoin healed through digest recovery."""

    victim: NodeId
    #: The participant that restarted from the stale checkpoint image
    #: (``None`` when the repair had no non-leader participant to restart).
    stale: Optional[NodeId]
    #: Records the stale restart actually rolled back.
    records_rolled_back: int
    converged: bool
    sweeps: int
    #: Digest-divergence re-instructions recovery had to send — non-zero
    #: when the rollback touched anything, this is the healing happening.
    retransmissions: int
    audit_clean: bool
    verified: bool


class ServiceClient:
    """One churn stream's handle on the daemon.

    Submissions validate against the *projected* state (current graph plus
    the not-yet-pumped backlog), journal durably, and return the journal
    sequence number — the client's receipt.  Nothing touches the healer
    until the daemon pumps.
    """

    def __init__(self, daemon: "HealerDaemon", name: str) -> None:
        self._daemon = daemon
        self.name = name

    def insert(self, node: NodeId, attach_to: Sequence[NodeId] = ()) -> int:
        return self._daemon.submit(self.name, "insert", node, attach_to)

    def delete(self, node: NodeId) -> int:
        return self._daemon.submit(self.name, "delete", node)


class HealerDaemon:
    """Event loop + durability around one :class:`DistributedForgivingGraph`.

    Build with :meth:`create` (fresh run: builds the genesis topology,
    initializes the store) or :meth:`restore` (crash recovery: loads the
    latest checkpoint and replays the journal).  The daemon is
    single-threaded by design — clients journal from any thread (sqlite
    serializes), but :meth:`pump` is the only thing that touches the
    healer, mirroring the one-adversary-move-at-a-time model.
    """

    def __init__(
        self,
        store: CheckpointStore,
        config: ServiceConfig,
        healer: DistributedForgivingGraph,
        *,
        applied_seq: int = 0,
        apply_rank: int = 0,
    ) -> None:
        self.store = store
        self.config = config
        self.healer = healer
        self.metrics = ServiceMetrics(latency_window=config.latency_window)
        self._applied_seq = applied_seq
        self._apply_rank = apply_rank
        self._pending: List[JournalOp] = []
        self._ops_since_checkpoint = 0
        #: Projected alive set = healer state + unpumped backlog effects,
        #: what submissions validate against.
        self._projected_alive: Set[NodeId] = set(healer.alive_nodes)
        self._status_server: Optional[StatusServer] = None
        #: Store counters mirrored on the daemon thread, so the status
        #: endpoint's server thread never touches the (thread-bound) sqlite
        #: connection.
        self._journal_len = store.journal_len()
        self._applied_len = store.applied_len()
        self._checkpoint_count = store.checkpoint_count()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, db_path: Union[str, Path], config: ServiceConfig) -> "HealerDaemon":
        """Start a fresh run: build genesis, initialize the store."""
        genesis = config.graph.build(seed=config.seed)
        store = CheckpointStore(db_path)
        store.initialize(config.to_json(), genesis)
        healer = cls._build_healer(config, genesis)
        return cls(store, config, healer)

    @staticmethod
    def _build_healer(config: ServiceConfig, genesis) -> DistributedForgivingGraph:
        options = dict(config.healer.options)
        schedule = config.fault.build(config.seed)
        if schedule is not None:
            options["fault_schedule"] = schedule
        return DistributedForgivingGraph.from_graph(genesis, **options)

    @classmethod
    def restore(
        cls, db_path: Union[str, Path]
    ) -> Tuple["HealerDaemon", RestartReport]:
        """Recover a crashed run from its store.

        The checkpoint prefix of the journal replays through the embedded
        engine only (in ``apply_rank`` order — the order the oracle
        originally saw), the distributed state loads verbatim from the
        checkpoint tables, and the crash suffix replays through the full
        message-native path.  The restored daemon is certified before it
        is returned: recovery reaches its fixed point, the plan-based
        audit wants nothing, and ``verify_consistency`` ties every record
        and link back to the oracle.
        """
        store = CheckpointStore(db_path)
        if not store.initialized:
            raise ConfigurationError(f"store {db_path} holds no service run to restore")
        config = ServiceConfig.from_json(store.config_json())
        genesis = store.genesis_graph()
        ckpt = store.latest_checkpoint()

        if ckpt is None:
            # No checkpoint yet: the genesis itself is the recovery point
            # and the whole journal is the suffix.
            healer = cls._build_healer(config, genesis)
            prefix_count = 0
            checkpoint_seq = 0
        else:
            # 1. Oracle prefix replay: the engine is deterministic given
            #    the engine-application order, which apply_rank recorded.
            engine = ForgivingGraph()
            for node in genesis.nodes:
                engine._add_initial_node(node)
            for u, v in genesis.edges:
                engine._add_initial_edge(u, v)
            prefix = store.journal_ops(until=ckpt.seq, order="rank")
            ever_ids = set(genesis.nodes)
            for op in prefix:
                if op.kind == "insert":
                    engine.insert(op.node, attach_to=op.attach)
                    ever_ids.add(op.node)
                else:
                    engine.delete(op.node)
            prefix_count = len(prefix)
            checkpoint_seq = ckpt.seq

            # 2. Rebuild the distributed side verbatim from the checkpoint.
            options = dict(config.healer.options)
            healer = DistributedForgivingGraph(
                fault_schedule=config.fault.build(config.seed), **options
            )
            healer._engine = engine
            network = healer.network
            for node in ckpt.alive:
                network.add_processor(node)
            for owner, neighbors in store.load_records(ckpt.ckpt_id).items():
                processor = network.processors[owner]
                for neighbor, fields in neighbors.items():
                    record = processor.ensure_edge(neighbor)
                    for name, value in fields.items():
                        setattr(record, name, value)
            links = store.load_links(ckpt.ckpt_id)
            network.replace_link_sources(links)
            for link in links:
                u, v = tuple(link)
                network.connect(u, v)
            network.quarantined = set(ckpt.quarantined)
            if network.transcript is not None:
                for accused, reporter, reason, round_ in store.load_transcript(ckpt.ckpt_id):
                    network.transcript.record(
                        accused=accused,
                        reporter=reporter,
                        reason=reason,
                        evidence=(),
                        round=round_,
                    )
            network.set_census(engine.nodes_ever, ever_ids=ever_ids)

        daemon = cls(
            store,
            config,
            healer,
            applied_seq=checkpoint_seq,
            apply_rank=store.max_apply_rank() if ckpt is not None else 0,
        )
        daemon.metrics.record_restart()

        # 3. Full-path suffix replay: everything after the checkpoint goes
        #    back through submit-validation-free application (it was already
        #    validated when first journalled).
        suffix = store.journal_ops(after=checkpoint_seq, order="seq")
        daemon._pending = list(suffix)
        for op in suffix:
            daemon._project(op)
        daemon.pump(checkpoint=False)

        # 4. Certification.
        recovery = daemon.healer.reconverge()
        audit = daemon.healer.audit_reference()
        verified = True
        try:
            daemon.healer.verify_consistency()
        except ForgivingGraphError:
            verified = False
        report = RestartReport(
            checkpoint_seq=checkpoint_seq,
            prefix_ops=prefix_count,
            suffix_ops=len(suffix),
            converged=recovery.converged,
            audit_clean=not audit,
            verified=verified,
        )
        if suffix and report.converged and report.verified:
            # Re-anchor durability at the certified state, so the *next*
            # crash replays from here instead of an ever-growing suffix.
            daemon.checkpoint()
        return daemon, report

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #
    def client(self, name: str) -> ServiceClient:
        return ServiceClient(self, name)

    def submit(
        self, client: str, kind: str, node: NodeId, attach: Sequence[NodeId] = ()
    ) -> int:
        """Validate against the projected state, journal durably, enqueue."""
        attach = tuple(dict.fromkeys(attach))
        if kind == "insert":
            if node in self._projected_alive or node in self.healer.deleted_nodes:
                raise ConfigurationError(
                    f"cannot insert {node!r}: the identifier is already in use"
                )
            missing = [a for a in attach if a not in self._projected_alive]
            if missing:
                raise ConfigurationError(
                    f"cannot insert {node!r}: attach targets {missing} are not alive"
                )
        elif kind == "delete":
            if node not in self._projected_alive:
                raise ConfigurationError(f"cannot delete {node!r}: not alive")
            if len(self._projected_alive) <= 2:
                raise ConfigurationError(
                    "cannot delete: the service keeps at least 2 survivors"
                )
        else:
            raise ConfigurationError(f"unknown op kind {kind!r}")
        seq = self.store.append_op(client, kind, node, attach)
        self._journal_len += 1
        op = JournalOp(seq=seq, client=client, kind=kind, node=node, attach=attach)
        self._pending.append(op)
        self._project(op)
        return seq

    def _project(self, op: JournalOp) -> None:
        if op.kind == "insert":
            self._projected_alive.add(op.node)
        else:
            self._projected_alive.discard(op.node)

    @property
    def backlog(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # the event loop body
    # ------------------------------------------------------------------ #
    def pump(self, checkpoint: bool = True) -> int:
        """Apply the whole backlog; returns the number of ops applied.

        Consecutive deletions (up to ``config.batch_window``) group into
        one ``delete_batch`` call — the concurrent admission path, whose
        per-victim reports carry the background anti-entropy ledgers the
        metrics fold in (including the silent fixed-point probe).  When
        ``checkpoint`` is left on, a checkpoint lands every
        ``config.checkpoint_every`` applied ops.
        """
        applied = 0
        while self._pending:
            op = self._pending[0]
            if op.kind == "insert":
                started = time.perf_counter()
                self.healer.insert(op.node, attach_to=op.attach)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                self._apply_rank += 1
                self.store.mark_applied(op.seq, elapsed_ms, self._apply_rank)
                self._applied_len += 1
                self.metrics.record_insert(elapsed_ms)
                self._applied_seq = op.seq
                self._pending.pop(0)
                applied += 1
            else:
                window: List[JournalOp] = []
                while (
                    self._pending
                    and self._pending[0].kind == "delete"
                    and len(window) < self.config.batch_window
                ):
                    window.append(self._pending.pop(0))
                victims = [w.node for w in window]
                seq_of = {w.node: w.seq for w in window}
                started = time.perf_counter()
                burst = self.healer.delete_batch(victims)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                # The oracle deleted in admission order — that order (not
                # submission order) is what a restore must replay, so the
                # ranks follow the burst's per-victim reports.
                for report in burst.reports:
                    self._apply_rank += 1
                    self.store.mark_applied(
                        seq_of[report.deleted_node], elapsed_ms, self._apply_rank
                    )
                    self._applied_len += 1
                    self.metrics.record_recovery(report.recovery)
                for size in burst.wave_sizes:
                    self.metrics.record_wave(
                        size, elapsed_ms * size / max(len(victims), 1)
                    )
                self._applied_seq = max(w.seq for w in window)
                applied += len(window)
            self._ops_since_checkpoint += 1 if op.kind == "insert" else len(window)
            if (
                checkpoint
                and self.config.checkpoint_every
                and self._ops_since_checkpoint >= self.config.checkpoint_every
            ):
                self.checkpoint()
        return applied

    def checkpoint(self) -> int:
        """Write a checkpoint of the *applied* state; returns its id.

        Unpumped backlog is untouched — it stays journalled and lands in
        the suffix any restore replays, so checkpointing between pump
        iterations is always safe.
        """
        ckpt_id = self.store.write_checkpoint(self.healer, seq=self._applied_seq)
        self._checkpoint_count += 1
        self._ops_since_checkpoint = 0
        self.metrics.record_checkpoint()
        return ckpt_id

    # ------------------------------------------------------------------ #
    # stale-checkpoint rejoin (the mid-repair processor restart)
    # ------------------------------------------------------------------ #
    def rejoin_stale(
        self, victim: Optional[NodeId] = None, stale: Optional[NodeId] = None
    ) -> RejoinReport:
        """Restart one repair participant from the latest checkpoint image.

        Checkpoints the current (pre-repair) state, runs one deletion
        through the *sequential* path — which leaves the repair contexts
        installed, exactly the mid-repair moment — then rolls the chosen
        participant's records back to the checkpoint image it would re-read
        on restart: its helper role for this repair is forgotten
        (``clear_helper`` where ``helper_victim`` is this repair's victim)
        and its ``rt_parent`` / ``representative`` rewires revert.  The
        leader's confirmations toward the restarted processor are dropped
        (its acks died with it).  Digest recovery then heals the divergence
        with real retransmissions, and the result is certified against the
        oracle.
        """
        if self._pending:
            raise ConfigurationError("rejoin_stale requires a pumped (quiescent) daemon")
        healer = self.healer
        network = healer.network
        if victim is None:
            victim = max(
                healer.alive_nodes,
                key=lambda n: (healer.engine.g_prime_degree(n), repr(n)),
            )
        if victim not in self._projected_alive:
            raise ConfigurationError(f"rejoin victim {victim!r} is not alive")
        ckpt_id = self.checkpoint()

        seq = self.store.append_op("__rejoin__", "delete", victim)
        self._journal_len += 1
        self._projected_alive.discard(victim)
        started = time.perf_counter()
        healer.delete(victim)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._apply_rank += 1
        self.store.mark_applied(seq, elapsed_ms, self._apply_rank)
        self._applied_len += 1
        self._applied_seq = seq
        self.metrics.record_wave(1, elapsed_ms)
        self._ops_since_checkpoint += 1

        runtime = healer._runtime
        candidates = [
            p
            for p in runtime.participants
            if p != runtime.leader and network.has_processor(p)
        ]
        if stale is None:
            stale = candidates[0] if candidates else None
        elif stale not in candidates:
            raise ConfigurationError(
                f"{stale!r} is not a restartable participant of this repair; "
                f"candidates: {candidates}"
            )
        if stale is None:
            # Degenerate repair (leader-only): nothing to restart, but the
            # deletion itself still converged — report it as such.
            recovery = healer.reconverge()
            return RejoinReport(
                victim=victim,
                stale=None,
                records_rolled_back=0,
                converged=recovery.converged,
                sweeps=recovery.sweeps,
                retransmissions=recovery.retransmissions,
                audit_clean=not healer.audit_reference(),
                verified=self._verify_quietly(),
            )

        # The restart: re-read the checkpoint image, scoped to what this
        # repair wrote.  The repair context survives (a rejoiner answers
        # digest requests; losing the context entirely is the *crash* case).
        image = self.store.load_records(ckpt_id, [stale]).get(stale, {})
        processor = network.processors[stale]
        rolled_back = 0
        for neighbor, fields in image.items():
            record = processor.edges.get(neighbor)
            if record is None:
                continue
            changed = False
            if record.has_helper and record.helper_victim == runtime.victim:
                record.clear_helper()
                changed = True
            if record.rt_parent != fields["rt_parent"]:
                record.rt_parent = fields["rt_parent"]
                changed = True
            if record.representative != fields["representative"]:
                record.representative = fields["representative"]
                changed = True
            rolled_back += changed
        leader_proc = network.processors.get(runtime.leader)
        context = leader_proc.repairs.get(runtime.victim) if leader_proc else None
        if context is not None:
            for port in list(context.confirmed_ports):
                if port.processor == stale:
                    del context.confirmed_ports[port]

        recovery = healer.reconverge()
        self.metrics.record_recovery(recovery)
        self.metrics.record_rejoin()
        return RejoinReport(
            victim=victim,
            stale=stale,
            records_rolled_back=rolled_back,
            converged=recovery.converged,
            sweeps=recovery.sweeps,
            retransmissions=recovery.retransmissions,
            audit_clean=not healer.audit_reference(),
            verified=self._verify_quietly(),
        )

    def _verify_quietly(self) -> bool:
        try:
            self.healer.verify_consistency()
        except ForgivingGraphError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def status(self) -> Dict[str, object]:
        """The live status snapshot the JSON endpoint serves."""
        return self.metrics.snapshot(
            extra={
                "config": self.config.describe(),
                "alive": self.healer.num_alive,
                "nodes_ever": self.healer.nodes_ever,
                "backlog": self.backlog,
                "journal": {
                    "length": self._journal_len,
                    "applied": self._applied_len,
                },
                "checkpoints": self._checkpoint_count,
                "transcript_accusations": (
                    len(self.healer.network.transcript)
                    if self.healer.network.transcript is not None
                    else 0
                ),
                "store_bytes": self.store.size_bytes(),
            }
        )

    def serve_status(self, host: str = "127.0.0.1", port: int = 0) -> StatusServer:
        """Start the JSON status endpoint; returns the (started) server."""
        if self._status_server is not None:
            return self._status_server
        self._status_server = StatusServer(self.status, host=host, port=port).start()
        return self._status_server

    def close(self) -> None:
        if self._status_server is not None:
            self._status_server.stop()
            self._status_server = None
        self.store.close()
