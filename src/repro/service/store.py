"""Durable checkpoint store for the healer service (sqlite, schema-versioned).

One database file per service run, holding everything a crashed daemon
needs to come back: the service configuration, the genesis topology, an
append-only operation journal (every client-submitted insert/delete, with
an ``applied`` watermark), and periodic structured checkpoints — the Table
1 per-edge records of every processor, the healed graph's sourced links,
the accountability transcript and the census.  The store is plain sqlite in
WAL mode (journal appends survive a ``kill -9`` between checkpoints), and
every value that names a node or port goes through an explicit typed codec
rather than pickle, so a checkpoint written by one process version is
readable by another and the on-disk format is inspectable with the sqlite
CLI.

The restore contract (see :meth:`repro.service.daemon.HealerDaemon.restore`)
splits the journal at the checkpoint's sequence number: the prefix is
replayed oracle-only (the engine is deterministic given the op sequence),
the distributed state comes from the checkpoint tables verbatim, and the
suffix — everything the crash interrupted — replays through the full
message-native path.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from ..core.errors import ConfigurationError
from ..core.ports import NodeId, Port
from ..distributed.processor import _RECORD_COLUMNS

__all__ = ["CheckpointStore", "CheckpointInfo", "JournalOp", "SCHEMA_VERSION"]

#: Bumped on any incompatible change to the table layout or the value codec;
#: opening a store written under a different version refuses loudly instead
#: of mis-decoding state.
SCHEMA_VERSION = 1


# --------------------------------------------------------------------------- #
# value codec: node identifiers, ports and link-source keys as tagged JSON
# --------------------------------------------------------------------------- #
def encode_value(value: object) -> object:
    """Encode a node/port-bearing value as tagged, JSON-safe data.

    Covers exactly the shapes the protocol state contains: ``None``, bools,
    ints, strings, :class:`Port`, tuples (link-source keys such as
    ``("rt", Port, Port)``) and frozensets (``("real", frozenset((u, v)))``).
    Anything else — an exotic user-defined node identifier — raises
    :class:`ConfigurationError`; durability requires representable ids.
    """
    if value is None or value is True or value is False:
        return value
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, Port):
        return ["P", encode_value(value.processor), encode_value(value.neighbor)]
    if isinstance(value, tuple):
        return ["t", [encode_value(item) for item in value]]
    if isinstance(value, frozenset):
        items = [encode_value(item) for item in value]
        items.sort(key=json.dumps)
        return ["f", items]
    raise ConfigurationError(
        f"cannot persist value {value!r} of type {type(value).__name__}; "
        "the service store supports int/str node identifiers, Ports, tuples "
        "and frozensets"
    )


def decode_value(payload: object) -> object:
    """Inverse of :func:`encode_value`."""
    if payload is None or payload is True or payload is False:
        return payload
    tag = payload[0]
    if tag == "i":
        return payload[1]
    if tag == "s":
        return payload[1]
    if tag == "P":
        return Port(decode_value(payload[1]), decode_value(payload[2]))
    if tag == "t":
        return tuple(decode_value(item) for item in payload[1])
    if tag == "f":
        return frozenset(decode_value(item) for item in payload[1])
    raise ConfigurationError(f"unknown codec tag {tag!r} in stored value")


def _dumps(value: object) -> str:
    return json.dumps(encode_value(value), separators=(",", ":"))


def _loads(text: str) -> object:
    return decode_value(json.loads(text))


@dataclass(frozen=True)
class JournalOp:
    """One client-submitted operation, as recorded in the journal.

    ``apply_rank`` is the *engine application order*: inside a
    ``delete_batch`` wave the oracle deletes victims in admission order,
    which may differ from submission order — and since the healed graph
    depends on deletion order, the restore's oracle prefix replay must
    follow ranks, not sequence numbers.  ``None`` until the op is applied.
    """

    seq: int
    client: str
    kind: str  # "insert" | "delete"
    node: NodeId
    attach: Tuple[NodeId, ...] = ()
    apply_rank: Optional[int] = None


@dataclass(frozen=True)
class CheckpointInfo:
    """Header row of one checkpoint (the state tables hang off ``ckpt_id``)."""

    ckpt_id: int
    #: Highest applied journal sequence number the checkpoint covers.
    seq: int
    n_ever: int
    alive: Tuple[NodeId, ...]
    quarantined: Tuple[NodeId, ...]


_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS genesis_nodes (
    node TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS genesis_edges (
    u TEXT NOT NULL,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    client TEXT NOT NULL,
    kind TEXT NOT NULL,
    node TEXT NOT NULL,
    attach TEXT NOT NULL,
    applied INTEGER NOT NULL DEFAULT 0,
    apply_rank INTEGER,
    latency_ms REAL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    ckpt_id INTEGER PRIMARY KEY AUTOINCREMENT,
    seq INTEGER NOT NULL,
    n_ever INTEGER NOT NULL,
    alive TEXT NOT NULL,
    quarantined TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    ckpt_id INTEGER NOT NULL,
    processor TEXT NOT NULL,
    neighbor TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_ckpt ON records (ckpt_id);
CREATE TABLE IF NOT EXISTS links (
    ckpt_id INTEGER NOT NULL,
    u TEXT NOT NULL,
    v TEXT NOT NULL,
    sources TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_links_ckpt ON links (ckpt_id);
CREATE TABLE IF NOT EXISTS transcript (
    ckpt_id INTEGER NOT NULL,
    accused TEXT NOT NULL,
    reporter TEXT NOT NULL,
    reason TEXT NOT NULL,
    round INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_transcript_ckpt ON transcript (ckpt_id);
"""


class CheckpointStore:
    """The healer service's durable state: journal + structured checkpoints.

    A store is opened either *fresh* (:meth:`initialize` writes the schema
    version, the service configuration and the genesis topology) or for
    *recovery* (the constructor validates the schema version and the
    accessors read everything back).  All writes commit immediately — the
    journal is the crash-safety boundary, so an op acknowledged to a client
    is an op the restore will replay.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.executescript(_TABLES)
        self._conn.commit()
        existing = self._meta("schema_version")
        if existing is not None and int(existing) != SCHEMA_VERSION:
            raise ConfigurationError(
                f"checkpoint store {self.path} was written under schema "
                f"v{existing}; this build reads v{SCHEMA_VERSION}"
            )

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------ #
    # meta
    # ------------------------------------------------------------------ #
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute("SELECT value FROM meta WHERE key=?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    @property
    def initialized(self) -> bool:
        return self._meta("schema_version") is not None

    def initialize(self, config_json: Dict[str, object], genesis: nx.Graph) -> None:
        """Record the schema version, service config and genesis topology."""
        if self.initialized:
            raise ConfigurationError(
                f"checkpoint store {self.path} is already initialized; one "
                "database holds one service run"
            )
        self._set_meta("schema_version", str(SCHEMA_VERSION))
        self._set_meta("config", json.dumps(config_json))
        self._conn.executemany(
            "INSERT INTO genesis_nodes (node) VALUES (?)",
            [(_dumps(node),) for node in genesis.nodes],
        )
        self._conn.executemany(
            "INSERT INTO genesis_edges (u, v) VALUES (?, ?)",
            [(_dumps(u), _dumps(v)) for u, v in genesis.edges],
        )
        self._conn.commit()

    def config_json(self) -> Dict[str, object]:
        raw = self._meta("config")
        if raw is None:
            raise ConfigurationError(f"store {self.path} holds no service config")
        return json.loads(raw)

    def genesis_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for (node,) in self._conn.execute("SELECT node FROM genesis_nodes"):
            graph.add_node(_loads(node))
        for u, v in self._conn.execute("SELECT u, v FROM genesis_edges"):
            graph.add_edge(_loads(u), _loads(v))
        return graph

    # ------------------------------------------------------------------ #
    # journal
    # ------------------------------------------------------------------ #
    def append_op(
        self, client: str, kind: str, node: NodeId, attach: Sequence[NodeId] = ()
    ) -> int:
        """Durably record one submitted op; returns its sequence number."""
        if kind not in ("insert", "delete"):
            raise ConfigurationError(f"unknown journal op kind {kind!r}")
        cursor = self._conn.execute(
            "INSERT INTO journal (client, kind, node, attach) VALUES (?, ?, ?, ?)",
            (client, kind, _dumps(node), _dumps(tuple(attach))),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def mark_applied(self, seq: int, latency_ms: float, apply_rank: int) -> None:
        self._conn.execute(
            "UPDATE journal SET applied=1, latency_ms=?, apply_rank=? WHERE seq=?",
            (latency_ms, apply_rank, seq),
        )
        self._conn.commit()

    def journal_ops(
        self, after: int = 0, until: Optional[int] = None, order: str = "seq"
    ) -> List[JournalOp]:
        """Journalled ops with ``after < seq <= until``.

        ``order="seq"`` returns submission order; ``order="rank"`` returns
        engine-application order (only meaningful for fully-applied ranges
        — the checkpoint prefix).
        """
        if order not in ("seq", "rank"):
            raise ConfigurationError(f"unknown journal order {order!r}")
        column = "seq" if order == "seq" else "apply_rank"
        rows = self._conn.execute(
            f"SELECT seq, client, kind, node, attach, apply_rank FROM journal "
            f"WHERE seq > ? AND seq <= ? ORDER BY {column}",
            (after, until if until is not None else 2**62),
        ).fetchall()
        return [
            JournalOp(
                seq=seq,
                client=client,
                kind=kind,
                node=_loads(node),
                attach=tuple(_loads(attach)),
                apply_rank=apply_rank,
            )
            for seq, client, kind, node, attach, apply_rank in rows
        ]

    def max_apply_rank(self) -> int:
        row = self._conn.execute("SELECT MAX(apply_rank) FROM journal").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def journal_len(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM journal").fetchone()[0])

    def applied_len(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM journal WHERE applied=1").fetchone()[0]
        )

    # ------------------------------------------------------------------ #
    # checkpoints
    # ------------------------------------------------------------------ #
    def write_checkpoint(self, healer, seq: int) -> int:
        """Persist the healer's distributed state as one checkpoint.

        ``healer`` is a :class:`~repro.distributed.DistributedForgivingGraph`
        at a quiescent point (between adversarial moves); ``seq`` is the
        highest applied journal sequence number the state reflects.  Table 1
        records, the sourced link table, the accountability transcript and
        the census all go in one transaction, so a crash mid-checkpoint
        leaves the previous checkpoint intact.
        """
        network = healer.network
        conn = self._conn
        cursor = conn.execute(
            "INSERT INTO checkpoints (seq, n_ever, alive, quarantined) VALUES (?, ?, ?, ?)",
            (
                seq,
                network.n_ever,
                _dumps(tuple(network.processors)),
                _dumps(tuple(network.quarantined)),
            ),
        )
        ckpt = int(cursor.lastrowid)
        record_rows = []
        for node_id, processor in network.processors.items():
            owner = _dumps(node_id)
            for neighbor, record in processor.edges.items():
                payload = [
                    encode_value(getattr(record, name)) for name, _col, _kind in _RECORD_COLUMNS
                ]
                record_rows.append(
                    (ckpt, owner, _dumps(neighbor), json.dumps(payload, separators=(",", ":")))
                )
        conn.executemany(
            "INSERT INTO records (ckpt_id, processor, neighbor, payload) VALUES (?, ?, ?, ?)",
            record_rows,
        )
        link_rows = []
        for link, keys in network.export_link_sources().items():
            u, v = tuple(link)
            link_rows.append((ckpt, _dumps(u), _dumps(v), _dumps(tuple(sorted(keys, key=repr)))))
        conn.executemany(
            "INSERT INTO links (ckpt_id, u, v, sources) VALUES (?, ?, ?, ?)", link_rows
        )
        transcript = network.transcript
        if transcript is not None:
            conn.executemany(
                "INSERT INTO transcript (ckpt_id, accused, reporter, reason, round) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (ckpt, _dumps(a.accused), _dumps(a.reporter), a.reason, a.round)
                    for a in transcript.accusations
                ],
            )
        conn.commit()
        return ckpt

    def latest_checkpoint(self) -> Optional[CheckpointInfo]:
        row = self._conn.execute(
            "SELECT ckpt_id, seq, n_ever, alive, quarantined FROM checkpoints "
            "ORDER BY ckpt_id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        ckpt_id, seq, n_ever, alive, quarantined = row
        return CheckpointInfo(
            ckpt_id=ckpt_id,
            seq=seq,
            n_ever=n_ever,
            alive=tuple(_loads(alive)),
            quarantined=tuple(_loads(quarantined)),
        )

    def checkpoint_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM checkpoints").fetchone()[0])

    def load_records(
        self, ckpt_id: int, processors: Optional[Iterable[NodeId]] = None
    ) -> Dict[NodeId, Dict[NodeId, Dict[str, object]]]:
        """Checkpointed Table 1 records: ``{processor: {neighbor: fields}}``.

        ``processors`` narrows the load (the stale-rejoin path reloads a
        single processor's records); ``None`` loads the whole checkpoint.
        """
        wanted: Optional[Set[str]] = (
            None if processors is None else {_dumps(node) for node in processors}
        )
        out: Dict[NodeId, Dict[NodeId, Dict[str, object]]] = {}
        for owner, neighbor, payload in self._conn.execute(
            "SELECT processor, neighbor, payload FROM records WHERE ckpt_id=?", (ckpt_id,)
        ):
            if wanted is not None and owner not in wanted:
                continue
            fields = {
                name: decode_value(value)
                for (name, _col, _kind), value in zip(_RECORD_COLUMNS, json.loads(payload))
            }
            out.setdefault(_loads(owner), {})[_loads(neighbor)] = fields
        return out

    def load_links(self, ckpt_id: int) -> Dict[frozenset, Set[Tuple]]:
        """Checkpointed sourced links in the ``replace_link_sources`` wire format."""
        out: Dict[frozenset, Set[Tuple]] = {}
        for u, v, sources in self._conn.execute(
            "SELECT u, v, sources FROM links WHERE ckpt_id=?", (ckpt_id,)
        ):
            out[frozenset((_loads(u), _loads(v)))] = set(_loads(sources))
        return out

    def load_transcript(self, ckpt_id: int) -> List[Tuple[NodeId, NodeId, str, int]]:
        """Checkpointed accusations as ``(accused, reporter, reason, round)``.

        Message evidence does not round-trip the store (evidence tuples hold
        live :class:`Message` objects); restored accusations carry empty
        evidence, which preserves the verdicts and the quarantine set — the
        durable part of accountability.
        """
        return [
            (_loads(accused), _loads(reporter), reason, round_)
            for accused, reporter, reason, round_ in self._conn.execute(
                "SELECT accused, reporter, reason, round FROM transcript WHERE ckpt_id=?",
                (ckpt_id,),
            )
        ]

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        """On-disk footprint (main DB + WAL), for the metrics endpoint."""
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.path) + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total
