"""Live observability for the healer daemon.

:class:`ServiceMetrics` is a thread-safe accumulator the daemon feeds as it
applies operations: per-repair latency samples (a bounded ring buffer, so
percentiles reflect *recent* behaviour), recovery-cost totals (digest
traffic, retransmissions, fixed-point probe results — the silent-protocol
evidence), wave occupancy from the ``delete_batch`` admission path, and
store sizes.  :meth:`snapshot` renders everything as one JSON-safe dict;
:class:`StatusServer` serves that snapshot over HTTP (``GET /status``) from
a stdlib ``ThreadingHTTPServer`` so a live daemon can be probed — by a
human, the perf-report service-churn benchmark, or the CI smoke leg —
without touching its event loop.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

__all__ = ["ServiceMetrics", "StatusServer", "percentile"]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a non-empty sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(int(round(q / 100.0 * len(ordered) + 0.5)) - 1, 0)
    return ordered[min(rank, len(ordered) - 1)]


class ServiceMetrics:
    """Thread-safe counters and latency percentiles for one daemon run.

    Latencies are wall-clock milliseconds per applied operation (for a
    ``delete_batch`` wave, the shared wall time is attributed to each rider
    — the burst's point is precisely that k repairs share it).  The ring
    buffer keeps the last ``latency_window`` samples so a long-lived daemon
    reports *current* percentiles, not a lifetime average.
    """

    def __init__(self, latency_window: int = 256) -> None:
        self._lock = threading.Lock()
        self._latencies_ms: deque = deque(maxlen=max(int(latency_window), 1))
        self.ops_applied = 0
        self.inserts = 0
        self.deletes = 0
        self.waves = 0
        self.wave_occupancy_sum = 0
        self.max_wave = 0
        self.recovery_sweeps = 0
        self.recovery_retransmissions = 0
        self.recovery_digest_messages = 0
        #: Count of repairs whose fixed-point probe ran and emitted nothing
        #: (the silent-protocol property) vs. probes that emitted traffic.
        self.fixed_point_silent = 0
        self.fixed_point_noisy = 0
        self.checkpoints_written = 0
        self.restarts = 0
        self.rejoins_healed = 0
        #: Wall-clock seconds this run has spent applying ops.
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------ #
    # feeding
    # ------------------------------------------------------------------ #
    def record_insert(self, latency_ms: float) -> None:
        with self._lock:
            self.ops_applied += 1
            self.inserts += 1
            self._latencies_ms.append(latency_ms)
            self.busy_seconds += latency_ms / 1000.0

    def record_wave(self, size: int, latency_ms: float) -> None:
        """One ``delete_batch`` admission wave of ``size`` riders."""
        with self._lock:
            self.waves += 1
            self.wave_occupancy_sum += size
            self.max_wave = max(self.max_wave, size)
            self.ops_applied += size
            self.deletes += size
            for _ in range(size):
                self._latencies_ms.append(latency_ms)
            self.busy_seconds += latency_ms / 1000.0

    def record_recovery(self, report) -> None:
        """Fold one :class:`RecoveryCostReport` into the totals."""
        if report is None:
            return
        with self._lock:
            self.recovery_sweeps += report.sweeps
            self.recovery_retransmissions += report.retransmissions
            self.recovery_digest_messages += report.digest_messages
            if report.fixed_point_messages == 0:
                self.fixed_point_silent += 1
            elif report.fixed_point_messages > 0:
                self.fixed_point_noisy += 1

    def record_checkpoint(self) -> None:
        with self._lock:
            self.checkpoints_written += 1

    def record_restart(self) -> None:
        with self._lock:
            self.restarts += 1

    def record_rejoin(self) -> None:
        with self._lock:
            self.rejoins_healed += 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """One JSON-safe view of everything (served by :class:`StatusServer`)."""
        with self._lock:
            samples = list(self._latencies_ms)
            ops_per_sec = (
                self.ops_applied / self.busy_seconds if self.busy_seconds > 0 else 0.0
            )
            snap: Dict[str, object] = {
                "ops_applied": self.ops_applied,
                "inserts": self.inserts,
                "deletes": self.deletes,
                "ops_per_sec": round(ops_per_sec, 2),
                "latency_ms": {
                    "p50": round(percentile(samples, 50), 3),
                    "p90": round(percentile(samples, 90), 3),
                    "p99": round(percentile(samples, 99), 3),
                    "samples": len(samples),
                },
                "waves": {
                    "count": self.waves,
                    "mean_occupancy": (
                        round(self.wave_occupancy_sum / self.waves, 3) if self.waves else 0.0
                    ),
                    "max_occupancy": self.max_wave,
                },
                "recovery": {
                    "sweeps": self.recovery_sweeps,
                    "retransmissions": self.recovery_retransmissions,
                    "digest_messages": self.recovery_digest_messages,
                    "fixed_point_silent": self.fixed_point_silent,
                    "fixed_point_noisy": self.fixed_point_noisy,
                },
                "checkpoints_written": self.checkpoints_written,
                "restarts": self.restarts,
                "rejoins_healed": self.rejoins_healed,
            }
        if extra:
            snap.update(extra)
        return snap


class StatusServer:
    """Minimal JSON status endpoint over stdlib HTTP (``GET /status``).

    The handler calls a zero-argument ``snapshot_fn`` on every request, so
    responses always reflect the daemon's current state; any other path is
    a 404.  ``port=0`` binds an ephemeral port (the bound port is on
    :attr:`port`, and ``scripts/healerd.py`` writes it to a port file so
    the benchmark/CI probe can find it).
    """

    def __init__(self, snapshot_fn, host: str = "127.0.0.1", port: int = 0) -> None:
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                if self.path.rstrip("/") not in ("", "/status"):
                    self.send_error(404)
                    return
                body = json.dumps(outer._snapshot_fn(), indent=2).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request stderr
                pass

        self._snapshot_fn = snapshot_fn
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)

    def start(self) -> "StatusServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/status"
