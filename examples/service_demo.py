#!/usr/bin/env python
"""Run the Forgiving Graph healer as a crash-recoverable, long-lived service.

The whole service story in one script: a :class:`~repro.service.HealerDaemon`
on a sqlite checkpoint store accepts churn from two concurrent client
streams (every operation journalled durably before it is applied, deletions
healed through the concurrent ``delete_batch`` admission path), serves live
repair-latency percentiles over its JSON status endpoint, then "crashes"
with an unpumped journal tail.  :meth:`~repro.service.HealerDaemon.restore`
replays the last checkpoint plus the journal and certifies the recovered
fabric against the oracle, and :meth:`~repro.service.HealerDaemon.rejoin_stale`
restarts one repair participant from a stale checkpoint image mid-repair —
a digest divergence the gossip recovery layer heals with real
retransmissions.

Run with::

    python examples/service_demo.py
"""

from __future__ import annotations

import json
import random
import tempfile
import urllib.request
from pathlib import Path

from repro.generators import GraphSpec
from repro.service import HealerDaemon, ServiceConfig


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="service_demo_"))
    db_path = workdir / "run.db"

    # The typed config surface: topology, healer, fault axis and service
    # knobs in one JSON-round-trippable object, persisted in the store so
    # a restart reconstructs exactly this configuration.
    config = ServiceConfig(
        graph=GraphSpec("power_law", 48),
        seed=7,
        checkpoint_every=12,
        batch_window=4,
    )
    daemon = HealerDaemon.create(db_path, config)
    print(f"daemon up: {config.describe()} -> {db_path}")

    # -- churn from two concurrent client streams -------------------------- #
    rng = random.Random(7)
    alice, bob = daemon.client("alice"), daemon.client("bob")
    next_id = 10_000
    for step in range(60):
        client = alice if step % 2 == 0 else bob
        alive = sorted(daemon._projected_alive, key=repr)
        if rng.random() < 0.3 or len(alive) <= 4:
            client.insert(next_id, rng.sample(alive, min(3, len(alive))))
            next_id += 1
        else:
            client.delete(rng.choice(alive))
        # Pump in batches; the last few submissions stay journalled but
        # unapplied — that tail is what makes the crash below interesting.
        if step % 8 == 7 and step < 54:
            daemon.pump()

    # -- live observability: the same GET /status a monitor would hit ------ #
    server = daemon.serve_status(port=0)
    with urllib.request.urlopen(server.url, timeout=10) as response:
        live = json.loads(response.read())
    print(
        f"live status ({server.url}): {live['ops_applied']} ops applied "
        f"({live['inserts']} inserts, {live['deletes']} deletes), "
        f"p50={live['latency_ms']['p50']}ms p99={live['latency_ms']['p99']}ms, "
        f"fixed point silent {live['recovery']['fixed_point_silent']}/"
        f"{live['recovery']['fixed_point_silent'] + live['recovery']['fixed_point_noisy']}, "
        f"{live['checkpoints_written']} checkpoints, backlog={live['backlog']}"
    )

    # -- crash: drop the daemon with the tail journalled but unapplied ----- #
    daemon.close()
    del daemon
    print("crashed (journal tail durable but unapplied)")

    # -- restore: checkpoint + journal replay, certified against the oracle - #
    daemon, restart = HealerDaemon.restore(db_path)
    print(
        f"restored from checkpoint seq={restart.checkpoint_seq}: "
        f"{restart.prefix_ops} prefix ops (oracle replay) + "
        f"{restart.suffix_ops} suffix ops (full protocol path), "
        f"converged={restart.converged} audit_clean={restart.audit_clean} "
        f"verified={restart.verified}"
    )

    # -- stale rejoin: a processor restarts from an old checkpoint image ---- #
    # Mid-repair, one participant is rolled back to the state the last
    # checkpoint recorded.  Its records now diverge from what the fabric
    # negotiated — a digest divergence the gossip anti-entropy layer
    # detects and heals with real retransmissions, no oracle involved.
    rejoin = daemon.rejoin_stale()
    print(
        f"stale rejoin: victim={rejoin.victim!r} stale processor={rejoin.stale!r}, "
        f"{rejoin.records_rolled_back} records rolled back -> healed in "
        f"{rejoin.sweeps} sweeps with {rejoin.retransmissions} retransmissions, "
        f"converged={rejoin.converged} audit_clean={rejoin.audit_clean} "
        f"verified={rejoin.verified}"
    )

    daemon.healer.verify_consistency()
    print(f"final fabric: {daemon.healer.num_alive} alive / "
          f"{daemon.healer.nodes_ever} ever, consistent with the oracle")
    daemon.close()


if __name__ == "__main__":
    main()
