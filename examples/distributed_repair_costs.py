#!/usr/bin/env python
"""Measure the distributed repair costs of Lemma 4 on the message-passing simulator.

Every deletion is replayed as explicit protocol messages (failure notices,
``BT_v`` anchor links, ``FindPrRoots`` probes, primary-root lists, helper
assignments) over a synchronous round-based network.  The example attacks a
power-law overlay and prints, per victim-degree bucket, the measured message
and round counts next to the explicit ``O(d log n)`` / ``O(log d log n)``
budgets from Lemma 4 — the shape to observe is that the measured costs track
``d`` linearly and stay far below the budgets.

Run with::

    python examples/distributed_repair_costs.py
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.adversary import MaxDegreeDeletion, deletion_only_schedule
from repro.analysis.stats import summarize
from repro.distributed import DistributedForgivingGraph
from repro.engine import AttackSession
from repro.experiments import format_table
from repro.generators import make_graph


def main() -> None:
    n = 250
    deletions = 150

    # The distributed healer is a first-class engine citizen: the unified
    # AttackSession drives the attack and each deletion's StepEvent carries
    # its DeletionCostReport.
    overlay = DistributedForgivingGraph.from_graph(make_graph("power_law", n, seed=3))
    schedule = deletion_only_schedule(
        steps=deletions, strategy=MaxDegreeDeletion(), min_survivors=3
    )
    session = AttackSession(
        overlay,
        schedule,
        healer_name="distributed_forgiving_graph",
        measure_every=0,
        measure_final=False,
    )
    cost_reports = [
        event.cost_report for event in session.stream() if event.cost_report is not None
    ]

    overlay.verify_consistency()  # the distributed Table-1 records match the engine
    metrics = overlay.network.metrics
    print(f"attack finished: {len(cost_reports)} repairs, "
          f"{metrics.total_messages} protocol messages, {metrics.total_bits} bits total\n")

    buckets = defaultdict(list)
    for report in cost_reports:
        buckets[min(report.degree, 32) if report.degree <= 32 else 33].append(report)

    rows = []
    for degree in sorted(buckets):
        reports = buckets[degree]
        label = f"{degree}" if degree <= 32 else ">32"
        messages = summarize([r.messages for r in reports])
        rounds = summarize([r.rounds for r in reports])
        rows.append(
            {
                "victim_degree": label,
                "repairs": len(reports),
                "messages(mean)": round(messages.mean, 1),
                "messages(max)": int(messages.maximum),
                "budget O(d log n)": round(max(r.message_budget for r in reports), 0),
                "rounds(mean)": round(rounds.mean, 1),
                "budget O(log d log n)": round(max(r.round_budget for r in reports), 0),
                "largest message (bits)": max(r.max_message_bits for r in reports),
            }
        )
    print(format_table(rows, title="repair cost by victim degree (Lemma 4)"))
    word = math.ceil(math.log2(overlay.nodes_ever))
    print(f"identifier word size for n={overlay.nodes_ever}: {word} bits — "
          "every message stays within a small constant number of O(log n)-bit words.")


if __name__ == "__main__":
    main()
