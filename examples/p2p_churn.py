#!/usr/bin/env python
"""Peer-to-peer churn: nodes join and leave continuously, the overlay self-heals.

This is the scenario the paper's introduction motivates: a peer-to-peer
overlay where an omniscient adversary controls which peers leave (always the
currently most-loaded ones) while new peers keep joining.  The example runs a
long churn schedule against the Forgiving Graph and prints a small time
series showing that the degree factor and the stretch stay pinned under their
Theorem 1 bounds while the network composition turns over almost completely.

Run with::

    python examples/p2p_churn.py
"""

from __future__ import annotations

from repro import ForgivingGraph
from repro.adversary import MaxDegreeDeletion, PreferentialInsertion, churn_schedule
from repro.analysis import guarantee_report
from repro.experiments import format_table
from repro.generators import make_graph


def main() -> None:
    initial_peers = 150
    churn_steps = 300

    overlay = ForgivingGraph.from_graph(make_graph("power_law", initial_peers, seed=42))
    schedule = churn_schedule(
        steps=churn_steps,
        delete_probability=0.55,
        deletion_strategy=MaxDegreeDeletion(),          # the adversary always kills the busiest peer
        insertion_strategy=PreferentialInsertion(k=3, seed=7),
        seed=7,
    )

    rows = []

    def snapshot(event, healer) -> None:
        if event.step % 50 != 0:
            return
        report = guarantee_report(healer, max_sources=32, seed=0, healer_name="forgiving_graph")
        rows.append(
            {
                "step": event.step,
                "alive_peers": report.alive,
                "peers_ever": report.n_ever,
                "degree_factor": round(report.degree_factor, 2),
                "stretch": round(report.stretch, 2),
                "stretch_bound(log2 n)": round(report.stretch_bound, 2),
                "connected": report.connected,
            }
        )

    events = schedule.run(overlay, on_event=snapshot)
    final = guarantee_report(overlay, max_sources=32, seed=0, healer_name="forgiving_graph")
    rows.append(
        {
            "step": len(events),
            "alive_peers": final.alive,
            "peers_ever": final.n_ever,
            "degree_factor": round(final.degree_factor, 2),
            "stretch": round(final.stretch, 2),
            "stretch_bound(log2 n)": round(final.stretch_bound, 2),
            "connected": final.connected,
        }
    )

    joins = sum(1 for e in events if e.kind == "insert")
    leaves = sum(1 for e in events if e.kind == "delete")
    print(f"churn finished: {joins} joins, {leaves} adversarial departures\n")
    print(format_table(rows, title="overlay health during churn"))
    print("Every row stays under the Theorem 1 bounds even though the adversary")
    print("always removes the currently busiest peer.")


if __name__ == "__main__":
    main()
