#!/usr/bin/env python
"""Peer-to-peer churn: nodes join and leave continuously, the overlay self-heals.

This is the scenario the paper's introduction motivates: a peer-to-peer
overlay where an omniscient adversary controls which peers leave (always the
currently most-loaded ones) while new peers keep joining.  The example drives
a long churn schedule through the unified :class:`repro.engine.AttackSession`
and consumes its *streaming* events: measurement rows arrive while the attack
is still running (the same mechanism the sweep harness uses to stream JSONL),
showing the degree factor and the stretch staying pinned under their
Theorem 1 bounds while the network composition turns over almost completely.

Run with::

    python examples/p2p_churn.py
"""

from __future__ import annotations

from repro import AttackSession, ForgivingGraph
from repro.adversary import MaxDegreeDeletion, PreferentialInsertion, churn_schedule
from repro.experiments import format_table
from repro.generators import make_graph


def main() -> None:
    initial_peers = 150
    churn_steps = 300

    overlay = ForgivingGraph.from_graph(make_graph("power_law", initial_peers, seed=42))
    schedule = churn_schedule(
        steps=churn_steps,
        delete_probability=0.55,
        deletion_strategy=MaxDegreeDeletion(),          # the adversary always kills the busiest peer
        insertion_strategy=PreferentialInsertion(k=3, seed=7),
        seed=7,
    )
    session = AttackSession(
        overlay,
        schedule,
        healer_name="forgiving_graph",
        stretch_sources=32,
        seed=0,
        measure_every=50,
    )

    rows = []
    for event in session.stream():
        if event.report is None:
            continue
        report = event.report
        rows.append(
            {
                "step": event.step,
                "alive_peers": report.alive,
                "peers_ever": report.n_ever,
                "degree_factor": round(report.degree_factor, 2),
                "stretch": round(report.stretch, 2),
                "stretch_bound(log2 n)": round(report.stretch_bound, 2),
                "connected": report.connected,
            }
        )

    result = session.result
    final = result.final_report
    rows.append(
        {
            "step": result.steps,
            "alive_peers": final.alive,
            "peers_ever": final.n_ever,
            "degree_factor": round(final.degree_factor, 2),
            "stretch": round(final.stretch, 2),
            "stretch_bound(log2 n)": round(final.stretch_bound, 2),
            "connected": final.connected,
        }
    )

    print(
        f"churn finished: {result.insertions} joins, "
        f"{result.deletions} adversarial departures "
        f"in {result.wall_clock_seconds:.2f}s\n"
    )
    print(format_table(rows, title="overlay health during churn"))
    print("Every row stays under the Theorem 1 bounds even though the adversary")
    print("always removes the currently busiest peer.")


if __name__ == "__main__":
    main()
