#!/usr/bin/env python
"""Peer-to-peer churn: nodes join and leave continuously, the overlay self-heals.

This is the scenario the paper's introduction motivates: a peer-to-peer
overlay where an omniscient adversary controls which peers leave (always the
currently most-loaded ones) while new peers keep joining.  The example drives
a long churn schedule through the unified :class:`repro.engine.AttackSession`
and consumes its *streaming* events: measurement rows arrive while the attack
is still running (the same mechanism the sweep harness uses to stream JSONL),
showing the degree factor and the stretch staying pinned under their
Theorem 1 bounds while the network composition turns over almost completely.

Run with::

    python examples/p2p_churn.py

Scaling
-------
The second act shows the large-n machinery (PR 7).  The message-passing
healer keys everything by *dense ints* internally — node identifiers are
interned once at the boundary (``repro.core.ports.Interner``), the network
adjacency is a flat list of int-sets with packed-int link-source keys, and
Table 1 records live in struct-of-arrays columns — so a processor costs a
few flat-array slots instead of a tangle of per-object dicts.  For sweeps
past what one process should hold, ``repro.experiments.sweep_large_n``
splits the node space into disjoint sub-networks: repairs in different
shards can never share a spine (the fine-grained version of this test is
``repro.experiments.repair_footprint``), so the shards fan out over the
deterministic-seed process pool and the rows come back bit-identical at
any worker count.  The seed-era object-dict layout survives as
``dense=False`` on both ``Network`` and the healer — the reference twin
the ``large_n`` section of BENCH_perf.json times the dense core against.

Shared fabric
-------------
The fourth act shows the shared-network scale path (PR 10):
``sweep_large_n(shared_network=True)`` drops the sharding entirely and
churns the whole graph as ONE :class:`~repro.distributed.Network` — one
message pool, one outbox, one metrics ledger — by repeatedly feeding
``delete_batch`` a disjoint-footprint victim burst until the deletion
budget is spent.  Every wave's repairs ride the zero-allocation message
fabric: slotted messages recycled through the per-network pool, same-link
repair streams folded into packed struct-of-arrays carriers, and per-send
accounting deferred into a per-round tally, so steady-state delivery
allocates ~zero message objects per round.

Bursts
------
The third act shows concurrent repairs (PR 8): a *burst* of simultaneous
departures whose repair footprints are pairwise disjoint is healed in one
shared message fabric — every repair message carries its victim as epoch
tag, all repairs interleave in the same ``deliver_round`` stream, and each
epoch's anti-entropy gossip rides along in the background until its
fixed-point probe goes silent.  The burst's round count trends to the
*maximum* of the individual repair latencies instead of their sum;
``delete_batch(concurrency=1)`` replays the same burst one repair at a
time as the bit-identical sequential reference.
"""

from __future__ import annotations

import os
import time

from repro import AttackSession, ForgivingGraph
from repro.adversary import MaxDegreeDeletion, PreferentialInsertion, churn_schedule
from repro.experiments import AttackConfig, format_table, sweep_large_n
from repro.generators import make_graph


def main() -> None:
    initial_peers = 150
    churn_steps = 300

    overlay = ForgivingGraph.from_graph(make_graph("power_law", initial_peers, seed=42))
    schedule = churn_schedule(
        steps=churn_steps,
        delete_probability=0.55,
        deletion_strategy=MaxDegreeDeletion(),          # the adversary always kills the busiest peer
        insertion_strategy=PreferentialInsertion(k=3, seed=7),
        seed=7,
    )
    session = AttackSession(
        overlay,
        schedule,
        healer_name="forgiving_graph",
        stretch_sources=32,
        seed=0,
        measure_every=50,
    )

    rows = []
    for event in session.stream():
        if event.report is None:
            continue
        report = event.report
        rows.append(
            {
                "step": event.step,
                "alive_peers": report.alive,
                "peers_ever": report.n_ever,
                "degree_factor": round(report.degree_factor, 2),
                "stretch": round(report.stretch, 2),
                "stretch_bound(log2 n)": round(report.stretch_bound, 2),
                "connected": report.connected,
            }
        )

    result = session.result
    final = result.final_report
    rows.append(
        {
            "step": result.steps,
            "alive_peers": final.alive,
            "peers_ever": final.n_ever,
            "degree_factor": round(final.degree_factor, 2),
            "stretch": round(final.stretch, 2),
            "stretch_bound(log2 n)": round(final.stretch_bound, 2),
            "connected": final.connected,
        }
    )

    print(
        f"churn finished: {result.insertions} joins, "
        f"{result.deletions} adversarial departures "
        f"in {result.wall_clock_seconds:.2f}s\n"
    )
    print(format_table(rows, title="overlay health during churn"))
    print("Every row stays under the Theorem 1 bounds even though the adversary")
    print("always removes the currently busiest peer.")

    scaling_demo()
    burst_demo()
    shared_network_demo()


def scaling_demo(total_peers: int = 2_000, shards: int = 4) -> None:
    """Sharded large-n churn on the dense-int message-passing healer."""
    print(f"\nscaling: {total_peers} peers as {shards} independent shards")
    workers = min(shards, os.cpu_count() or 1)
    start = time.perf_counter()
    rows = sweep_large_n(
        "p2p-scaling",
        "erdos_renyi",
        total_peers,
        shards,
        attack=AttackConfig(strategy="random", delete_fraction=0.02, delete_probability=0.9),
        seed=7,
        stretch_sources=8,
        max_workers=workers if workers > 1 else None,
    )
    elapsed = time.perf_counter() - start
    print(
        format_table(
            [
                {
                    "shard": row["experiment"],
                    "peers": row["n0"],
                    "departures": row["deletions"],
                    "joins": row["insertions"],
                    "stretch": row["stretch"],
                    "connected": row["connected"],
                }
                for row in rows
            ],
            title="per-shard outcomes (bit-identical at any worker count)",
        )
    )
    print(
        f"{total_peers} peers churned in {elapsed:.2f}s "
        f"({total_peers / elapsed:,.0f} peers/sec, workers={workers}); "
        "repairs in different shards share no spine, so the pool never races."
    )


def burst_demo(peers: int = 120) -> None:
    """A burst of simultaneous departures healed concurrently in one fabric."""
    from repro.core.ports import NodeKey
    from repro.core.views import g_prime_view_of
    from repro.distributed.simulator import DistributedForgivingGraph
    from repro.experiments import select_disjoint_victims

    graph = make_graph("power_law", peers, seed=42)
    probe = DistributedForgivingGraph.from_graph(graph)
    degree = g_prime_view_of(probe).degree
    candidates = [
        v
        for v in sorted(probe.alive_nodes, key=lambda v: (-degree[v], NodeKey(v)))
        if degree[v] >= 3
    ]
    # Skip the biggest hubs — their repair footprints blanket the overlay;
    # the next tier down yields a genuinely disjoint burst.
    victims = select_disjoint_victims(probe, candidates[5:], limit=8)
    print(f"\nburst: {len(victims)} peers depart simultaneously")

    sequential = DistributedForgivingGraph.from_graph(graph)
    seq = sequential.delete_batch(victims, concurrency=1)
    concurrent = DistributedForgivingGraph.from_graph(graph)
    conc = concurrent.delete_batch(victims, concurrency=None)
    concurrent.verify_consistency()

    rows = [
        {
            "admission": label,
            "waves": burst.waves,
            "rounds": burst.rounds,
            "messages": sum(r.messages for r in burst.reports),
            "silent_fixed_point": all(
                r.recovery is not None and r.recovery.fixed_point_messages == 0
                for r in burst.reports
            )
            if label != "one-at-a-time"
            else "-",
        }
        for label, burst in (("one-at-a-time", seq), ("concurrent", conc))
    ]
    print(format_table(rows, title="burst repair cost: latency ~ max, not ~ sum"))
    print(
        f"concurrent admission healed the burst in {conc.rounds} rounds vs "
        f"{seq.rounds} sequential ({conc.rounds / seq.rounds:.0%}); every "
        "epoch's background anti-entropy went provably silent."
    )


def shared_network_demo(total_peers: int = 3_000) -> None:
    """Delete-heavy churn on ONE shared network over the message fabric."""
    print(f"\nshared fabric: {total_peers} peers churned on a single network")
    rows = sweep_large_n(
        "p2p-shared-fabric",
        "erdos_renyi",
        total_peers,
        1,
        attack=AttackConfig(strategy="random", delete_fraction=0.02, delete_probability=1.0),
        seed=11,
        shared_network=True,
    )
    row = rows[0]
    print(
        format_table(
            [
                {
                    "peers": row["n"],
                    "departures": f"{row['deletions']}/{row['deletion_target']}",
                    "waves": row["waves"],
                    "rounds": row["rounds"],
                    "peers/sec": f"{row['nodes_per_sec']:,.0f}",
                    "connected": row["connected"],
                }
            ],
            title="one network, one pool, one outbox (sweep_large_n(shared_network=True))",
        )
    )
    print(
        f"{row['waves']} disjoint-footprint bursts healed back-to-back in "
        f"{row['rounds']} rounds on a single message fabric — pooled slotted "
        "messages and packed same-link carriers keep the steady-state delivery "
        "loop at ~zero message-object allocations per round."
    )


if __name__ == "__main__":
    main()
