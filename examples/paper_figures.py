#!/usr/bin/env python
"""Walk through the paper's worked examples (Figures 2, 3, 5, 7, 8) in code.

The script builds the exact situations the figures illustrate and prints the
resulting structures as ASCII trees, so the correspondence between the
implementation and the paper can be eyeballed:

* Figure 3 — the half-full tree over 7 leaves and its primary roots,
* Figure 5 — merging hafts is binary addition (5 + 2 + 1 = 8 leaves),
* Figure 2 — a deleted node is replaced by a Reconstruction Tree over its
  neighbours,
* Figures 7-8 — deleting a node adjacent to existing RTs merges everything
  into one haft.

Run with::

    python examples/paper_figures.py
"""

from __future__ import annotations

from repro import ForgivingGraph
from repro.core.haft import HaftNode, build_haft, merge, primary_roots
from repro.core.reconstruction_tree import RTHelper, RTLeaf


def render_haft(node: HaftNode, indent: str = "") -> str:
    """ASCII rendering of a haft (leaves show their payload)."""
    if node.is_leaf:
        return f"{indent}* {node.payload}\n"
    text = f"{indent}+ ({node.num_leaves} leaves, h={node.height})\n"
    text += render_haft(node.left, indent + "  |")
    text += render_haft(node.right, indent + "  |")
    return text


def render_rt(node, indent: str = "") -> str:
    """ASCII rendering of a reconstruction tree (who simulates what)."""
    if isinstance(node, RTLeaf):
        return f"{indent}* port({node.port.processor}|{node.port.neighbor})\n"
    assert isinstance(node, RTHelper)
    text = (
        f"{indent}+ helper simulated by {node.simulated_by.processor} "
        f"({node.num_leaves} leaves)\n"
    )
    text += render_rt(node.left, indent + "  |")
    text += render_rt(node.right, indent + "  |")
    return text


def figure_3() -> None:
    print("=" * 70)
    print("Figure 3 — the half-full tree over 7 leaves")
    print("=" * 70)
    haft = build_haft(list("abcdefg"))
    print(render_haft(haft))
    roots = primary_roots(haft)
    print("primary roots (the 1-bits of 7 = 4 + 2 + 1):",
          [root.num_leaves for root in roots], "\n")


def figure_5() -> None:
    print("=" * 70)
    print("Figure 5 — merging hafts is binary addition (0101 + 0010 + 0001 = 1000)")
    print("=" * 70)
    merged = merge([
        build_haft(["a", "b", "c", "d", "e"]),   # 5 leaves = 0101
        build_haft(["x", "y"]),                   # 2 leaves = 0010
        build_haft(["z"]),                        # 1 leaf   = 0001
    ])
    print(render_haft(merged))
    print("8 leaves -> a single complete tree, exactly like 0101+0010+0001=1000.\n")


def figure_2() -> None:
    print("=" * 70)
    print("Figure 2 — deleted node v replaced by its Reconstruction Tree")
    print("=" * 70)
    neighbors = list("abcdefgh")
    fg = ForgivingGraph.from_edges([("v", x) for x in neighbors], check_invariants=True)
    fg.delete("v")
    (rt,) = fg.reconstruction_trees()
    print(render_rt(rt.root))
    healed = fg.actual_graph()
    print("healed edges:", sorted(tuple(sorted(map(str, e))) for e in healed.edges), "\n")


def figures_7_8() -> None:
    print("=" * 70)
    print("Figures 7-8 — RTs merge when a node between them is deleted")
    print("=" * 70)
    fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(8)], check_invariants=True)
    for victim in (3, 5):
        fg.delete(victim)
    print(f"after deleting 3 and 5: {len(fg.reconstruction_trees())} separate RTs")
    fg.delete(4)
    (rt,) = fg.reconstruction_trees()
    print("after deleting 4 (adjacent to both holes): they merge into one RT:\n")
    print(render_rt(rt.root))


if __name__ == "__main__":
    figure_3()
    figure_5()
    figure_2()
    figures_7_8()
