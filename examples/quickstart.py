#!/usr/bin/env python
"""Quickstart: heal a small network under adversarial deletions.

This example builds a small peer-to-peer style network and plays a scripted
adversarial attack through :class:`repro.engine.AttackSession` — the unified
step loop (adversary move → self-healing repair → incremental measurement)
that every workload in this repository drives:

.. code-block:: python

    from repro import AttackSession, ForgivingGraph
    from repro.adversary import AttackSchedule, ScriptedDeletion

    fg = ForgivingGraph.from_edges(edges)
    schedule = AttackSchedule(steps=3, deletion_strategy=ScriptedDeletion([...]))
    for event in AttackSession(fg, schedule).stream():
        ...                      # typed per-step events, measurements included

It then shows the three graph views the library maintains, together with the
Theorem 1 guarantees:

* ``G'``  — everything that was ever inserted (the yardstick),
* ``G``   — the actual healed network after the repairs,
* the reconstruction trees that stand in for the deleted nodes.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

from repro import AttackSession, ForgivingGraph
from repro.adversary import AttackSchedule, ScriptedDeletion


def main() -> None:
    # A tiny "data centre": two rings of servers bridged by a gateway node.
    edges = [(i, (i + 1) % 6) for i in range(6)]                      # ring A: 0..5
    edges += [(10 + i, 10 + (i + 1) % 6) for i in range(6)]           # ring B: 10..15
    edges += [("gw", 0), ("gw", 10)]                                  # the gateway bridges them
    fg = ForgivingGraph.from_edges(edges, check_invariants=True)

    print("initial network:", fg)
    print("  edges:", sorted(tuple(sorted(map(str, e))) for e in fg.actual_graph().edges)[:6], "...")

    # The adversary strikes the gateway first — the worst possible cut vertex —
    # and then two ordinary ring nodes.  The session owns the loop; we watch
    # its typed event stream and read the repair details off the engine log.
    schedule = AttackSchedule(
        steps=3, deletion_strategy=ScriptedDeletion(["gw", 2, 12]), seed=0
    )
    # Measurement is manual in this walkthrough (we measure after a later
    # insertion), so the session's own final measurement is switched off.
    session = AttackSession(
        fg, schedule, healer_name="forgiving_graph", measure_every=0, measure_final=False
    )
    for event in session.stream():
        report = fg.events[-1].report
        print(
            f"deleted {event.node!r}: repair merged {report.merged_complete_trees} pieces "
            f"into an RT of {report.new_rt_size} leaves "
            f"({report.helpers_created} helper nodes created)"
        )

    # A new peer joins afterwards (insertions need no repair work at all).
    fg.insert("newcomer", attach_to=[0, 10])
    print("inserted 'newcomer' attached to both rings")

    healed = fg.actual_graph()
    print("\nhealed network:")
    print("  alive nodes:", sorted(map(str, healed.nodes)))
    print("  connected:", nx.is_connected(healed))

    report = session.measure_now()
    print("\nTheorem 1 check:")
    print(f"  degree factor : {report.degree_factor:.2f}   (paper bound: 3, hard bound: 4)")
    print(f"  stretch       : {report.stretch:.2f}   (bound log2(n) = {report.stretch_bound:.2f})")
    print(f"  within bounds : degree={report.degree_ok}, stretch={report.stretch_ok}")

    print("\nreconstruction trees currently standing in for deleted nodes:")
    for rt in fg.reconstruction_trees():
        owners = sorted(map(str, rt.processors()))
        print(f"  RT#{rt.rt_id}: {rt.size} leaves, depth {rt.depth}, simulated by {owners}")


if __name__ == "__main__":
    main()
