#!/usr/bin/env python
"""Compare self-healing strategies under an omniscient targeted attack.

An infrastructure network (power-law, like an airline or AS-level topology)
is attacked by an adversary that always deletes the node currently carrying
the highest degree.  Every healer faces the *same* initial network and the
same attack; the table shows the degree/stretch trade-off point each one
lands on — the executable version of the comparison the paper's introduction
makes against the Forgiving Tree and naive healing rules, and of the Theorem 2
statement that the trade-off cannot be escaped.

Run with::

    python examples/targeted_attack_comparison.py
"""

from __future__ import annotations

from repro.analysis import lower_bound_stretch
from repro.baselines import available_healers
from repro.experiments import AttackConfig, ExperimentConfig, format_table, run_healer_comparison
from repro.generators import GraphSpec


def main() -> None:
    config = ExperimentConfig(
        name="targeted-attack",
        graph=GraphSpec(topology="power_law", n=250),
        attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
        healers=tuple(available_healers()),
        seed=1,
        stretch_sources=32,
    )

    print(f"attacking {config.graph.label()} — deleting the current max-degree node "
          f"{config.attack.steps_for(config.graph.n)} times\n")

    outcomes = run_healer_comparison(config)
    rows = []
    for outcome in outcomes:
        row = outcome.as_row()
        rows.append(
            {
                "healer": row["healer"],
                "degree_factor": row["degree_factor"],
                "stretch": row["stretch"],
                "stretch_bound(log2 n)": row["stretch_bound"],
                "connected": row["connected"],
                "seconds": row["seconds"],
            }
        )
    print(format_table(rows, title="degree/stretch trade-off under targeted attack"))

    floor = lower_bound_stretch(config.graph.n, 3.0)
    print(f"Theorem 2 floor for degree factor 3 on n={config.graph.n}: stretch >= {floor:.2f}")
    print("Reading the table: clique/surrogate healing keeps distances tiny by blowing up")
    print("degrees; cycle healing and the Forgiving Tree keep degrees small but let distances")
    print("grow; no-healing disconnects.  Only the Forgiving Graph keeps both small, which is")
    print("what Theorems 1 and 2 together say is the best possible, up to constants.")


if __name__ == "__main__":
    main()
