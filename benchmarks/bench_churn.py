"""E10 — mixed insertion/deletion churn (the model of Figure 1).

Benchmarks long churn runs at several insert/delete mixes and records that
the guarantees keep holding; also times the pure-insertion path (which must
be repair-free and therefore much cheaper per move).  Churn runs drive the
unified :class:`repro.engine.AttackSession` step loop.
"""

import pytest

from repro import AttackSession, ForgivingGraph
from repro.adversary import churn_schedule, insertion_burst_schedule
from repro.generators import make_graph

from conftest import run_once


@pytest.mark.parametrize("delete_probability", [0.3, 0.5, 0.7])
def test_churn_guarantees(benchmark, delete_probability):
    # The timed region is the bare attack (as in prior recordings, so the
    # trajectory stays comparable); the guarantee check runs off the clock.
    def workload():
        fg = ForgivingGraph.from_graph(make_graph("power_law", 100, seed=10))
        schedule = churn_schedule(steps=250, delete_probability=delete_probability, seed=10)
        session = AttackSession(
            fg,
            schedule,
            healer_name="forgiving_graph",
            stretch_sources=24,
            seed=0,
            measure_every=0,
            measure_final=False,
        )
        session.run()
        return session

    session = run_once(benchmark, workload)
    report = session.measure_now()
    benchmark.extra_info["delete_probability"] = delete_probability
    benchmark.extra_info["nodes_ever"] = report.n_ever
    benchmark.extra_info["degree_factor"] = round(report.degree_factor, 3)
    benchmark.extra_info["stretch"] = round(report.stretch, 3)
    benchmark.extra_info["stretch_bound"] = round(report.stretch_bound, 3)
    assert report.connected
    assert report.degree_factor <= 4.0 + 1e-9
    assert report.stretch <= report.stretch_bound + 1e-9


def test_pure_insertion_is_repair_free(benchmark):
    def workload():
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", 50, seed=11))
        AttackSession(
            fg, insertion_burst_schedule(steps=400, seed=11), measure_every=0, measure_final=False
        ).run()
        return fg

    fg = run_once(benchmark, workload)
    benchmark.extra_info["nodes_ever"] = fg.nodes_ever
    assert fg.reconstruction_trees() == []
    assert fg.degree_increase_factor() <= 1.0 + 1e-9
