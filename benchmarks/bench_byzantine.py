"""Byzantine accountability benchmarks: what does honest traffic pay?

The byzantine detection machinery (PR 6) is designed so honest runs pay
essentially nothing: message seals are lazy (a never-sealed message passes
``seal_valid`` on a dict lookup), descriptor checksums hash once per object
and cache the verdict, and cross-witnessing is one dict probe per admitted
descriptor.  These benchmarks make that claim visible alongside the
experiment benchmarks — the accountable lossless attack next to the same
attack with the transcript disabled, plus the full byzantine attack so the
cost of detection-under-lies stays tracked.  The pass/fail version of the
claim lives in ``scripts/perf_report.py`` (``byzantine_containment`` gate).

Every item here carries the ``perf`` marker (added by conftest) and stays
out of the tier-1 run.
"""

import pytest

from repro.adversary.strategies import MaxDegreeDeletion
from repro.distributed import DistributedForgivingGraph
from repro.distributed.faults import fault_schedule
from repro.generators import make_graph

from conftest import run_once

SIZES = [100, 400]


def run_attack(n: int, seed: int = 20090214, *, preset=None, accountable=True):
    graph = make_graph("power_law", n, seed=seed)
    schedule = fault_schedule(preset, seed=seed) if preset else None
    healer = DistributedForgivingGraph.from_graph(
        graph, fault_schedule=schedule, quarantine_plan_audit=preset is not None
    )
    if not accountable:
        healer.network.transcript = None  # receive()-time verification off
    strategy = MaxDegreeDeletion()
    for _ in range(n // 2):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
    return healer


@pytest.mark.parametrize("n", SIZES)
def test_lossless_attack_accountability_off(benchmark, n):
    """Baseline: the lossless attack with the transcript disabled."""
    healer = run_once(benchmark, run_attack, n, accountable=False)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(healer.cost_reports)
    assert healer.network.transcript is None


@pytest.mark.parametrize("n", SIZES)
def test_lossless_attack_accountability_on(benchmark, n):
    """The same attack verifying every sealed kind and descriptor checksum.

    Compare against ``test_lossless_attack_accountability_off`` at the same
    n: the whole checksum/witness machinery should be lost in the noise.
    """
    healer = run_once(benchmark, run_attack, n, accountable=True)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(healer.cost_reports)
    # Honest traffic never triggers an accusation.
    assert len(healer.network.transcript) == 0


@pytest.mark.parametrize("n", SIZES)
def test_byzantine_attack_with_detection(benchmark, n):
    """The byzantine preset end to end: lies, accusations, quarantines.

    Not a like-for-like timing against the lossless rows (the workload
    itself differs once processors are quarantined) — this row tracks the
    absolute cost of the detect-accuse-quarantine-recover cycle.
    """
    healer = run_once(benchmark, run_attack, n, preset="byzantine")
    network = healer.network
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(healer.cost_reports)
    benchmark.extra_info["lies_delivered"] = network.injection_log.total_delivered
    benchmark.extra_info["accused"] = len(network.transcript.accused)
    assert set(network.transcript.accused) == (
        network.injection_log.origins_with_delivered_lies
    )
