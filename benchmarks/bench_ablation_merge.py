"""Ablation — what the haft Merge step buys (DESIGN.md design-choice ablation).

Compares the full Forgiving Graph against the ``unmerged_rt`` ablation, which
builds a fresh balanced tree per deletion and never merges reconstruction
trees.  Under a sustained max-degree attack the ablation's degree factor
grows with the length of the attack while the Forgiving Graph's stays pinned
at its constant — isolating the contribution of the Strip/Merge machinery.
"""

import pytest

from repro.experiments.config import AttackConfig, ExperimentConfig
from repro.experiments.runner import run_attack
from repro.generators import GraphSpec

from conftest import run_once


def _config(n: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="ablation-merge",
        graph=GraphSpec(topology="power_law", n=n),
        attack=AttackConfig(strategy="max_degree", delete_fraction=0.6),
        healers=("forgiving_graph", "unmerged_rt"),
        seed=21,
        stretch_sources=24,
    )


@pytest.mark.parametrize("healer_name", ["forgiving_graph", "unmerged_rt"])
@pytest.mark.parametrize("n", [150, 300])
def test_merge_ablation_degree_growth(benchmark, healer_name, n):
    config = _config(n)
    graph = config.graph.build(seed=config.seed)
    outcome = run_once(benchmark, run_attack, config, healer_name, graph)
    benchmark.extra_info["healer"] = healer_name
    benchmark.extra_info["n"] = n
    benchmark.extra_info["degree_factor"] = round(outcome.peak_degree_factor, 3)
    benchmark.extra_info["stretch"] = round(outcome.peak_stretch, 3)
    if healer_name == "forgiving_graph":
        assert outcome.peak_degree_factor <= 4.0 + 1e-9


def test_merge_ablation_gap(benchmark):
    """The headline ablation number: the degree-factor gap on the same attack."""

    def workload():
        config = _config(300)
        graph = config.graph.build(seed=config.seed)
        with_merge = run_attack(config, "forgiving_graph", graph=graph)
        without_merge = run_attack(config, "unmerged_rt", graph=graph)
        return with_merge, without_merge

    with_merge, without_merge = run_once(benchmark, workload)
    benchmark.extra_info["forgiving_graph_degree_factor"] = round(with_merge.peak_degree_factor, 3)
    benchmark.extra_info["unmerged_rt_degree_factor"] = round(without_merge.peak_degree_factor, 3)
    # Removing the merge step must cost a strictly larger degree blow-up.
    assert without_merge.peak_degree_factor > with_merge.peak_degree_factor
