"""Message-fabric benchmarks: pooled/packed delivery floods and shared-network churn.

Times the PR 10 zero-allocation fabric against its retained PR 9 twin
(``pooled=False, packed_batching=False, batched_accounting=False``) on the
same steady-state flood the ``message_fabric`` BENCH gate measures: 32 ring
processors, 12 same-link deletion notices per edge per round (a chunked
report wave's stream shape), delivered through the packed carrier path.  A
third item drives a delete-heavy churn over one shared ``Network`` — the
``sweep_large_n(shared_network=True)`` scale path.  The authoritative gate
numbers live in ``BENCH_perf.json`` (``scripts/perf_report.py``); this
module keeps the fabric visible to ``pytest benchmarks/ --benchmark-only``.

Every item here carries the ``perf`` marker (added by conftest) and stays
out of the tier-1 run.
"""

import pytest

from repro.distributed import DeletionNotice, Network
from repro.experiments import AttackConfig
from repro.experiments.sweeps import sweep_large_n

from conftest import run_once

WIDTH = 32
BURST = 12
ROUNDS = 600


def flood(fabric: bool, rounds: int = ROUNDS) -> Network:
    network = Network(strict_links=False)
    network.pooled = fabric
    network.packed_batching = fabric
    network.batched_accounting = fabric
    for p in range(WIDTH):
        network.add_processor(p)
    send = network.send
    new = network.new
    for _ in range(rounds):
        for p in range(WIDTH):
            receiver = (p + 1) % WIDTH
            for _ in range(BURST):
                send(new(DeletionNotice, p, receiver, -1))
        network.deliver_round()
    return network


@pytest.mark.parametrize("fabric", [False, True], ids=["pr9-twin", "fabric"])
def test_delivery_flood(benchmark, fabric):
    """Steady-state same-link flood: pooled+packed+tallied vs the PR 9 twin."""
    network = run_once(benchmark, flood, fabric)
    benchmark.extra_info["width"] = WIDTH
    benchmark.extra_info["burst"] = BURST
    benchmark.extra_info["rounds"] = ROUNDS
    benchmark.extra_info["messages"] = network.metrics.total_messages
    assert network.metrics.total_messages == WIDTH * BURST * ROUNDS


@pytest.mark.parametrize("packed", [False, True], ids=["unpacked", "packed"])
def test_pooled_flood_packing_ablation(benchmark, packed):
    """Pooling held fixed, packing toggled — isolates the carrier's share."""

    def workload():
        network = Network(strict_links=False)
        network.packed_batching = packed
        for p in range(WIDTH):
            network.add_processor(p)
        for _ in range(ROUNDS // 2):
            for p in range(WIDTH):
                receiver = (p + 1) % WIDTH
                for _ in range(BURST):
                    network.send(network.new(DeletionNotice, p, receiver, -1))
            network.deliver_round()
        return network

    network = run_once(benchmark, workload)
    benchmark.extra_info["packed"] = packed
    benchmark.extra_info["messages"] = network.metrics.total_messages


def test_shared_network_churn(benchmark):
    """A delete-heavy run on ONE shared network (the large-n scale path)."""
    rows = run_once(
        benchmark,
        sweep_large_n,
        "bench-shared-network",
        "erdos_renyi",
        2_000,
        1,
        attack=AttackConfig(
            strategy="random", delete_fraction=0.01, delete_probability=1.0
        ),
        seed=3,
        shared_network=True,
    )
    row = rows[0]
    benchmark.extra_info["n"] = row["n"]
    benchmark.extra_info["deletions"] = row["deletions"]
    benchmark.extra_info["nodes_per_sec"] = row["nodes_per_sec"]
    assert row["connected"]
    assert row["deletions"] == row["deletion_target"]
