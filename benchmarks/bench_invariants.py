"""E6 — Lemma 3 / structural invariants: cost of self-checking under churn.

Benchmarks a churn run with the full invariant suite re-verified after every
move (the invariant checker is the executable statement of Lemma 3 and the
representative mechanism), and a plain run for comparison.
"""

import pytest

from repro import ForgivingGraph
from repro.adversary import churn_schedule
from repro.generators import make_graph

from conftest import run_once


@pytest.mark.parametrize("checked", [True, False], ids=["checked", "unchecked"])
def test_churn_with_and_without_invariant_checking(benchmark, checked):
    def workload():
        fg = ForgivingGraph.from_graph(
            make_graph("erdos_renyi", 60, seed=6),
            check_invariants=checked,
            invariant_check_limit=10_000,
        )
        churn_schedule(steps=80, delete_probability=0.6, seed=6).run(fg)
        return fg

    fg = run_once(benchmark, workload)
    fg.check_invariants()  # final explicit verification either way
    benchmark.extra_info["checked_every_step"] = checked
    benchmark.extra_info["nodes_ever"] = fg.nodes_ever
    benchmark.extra_info["rts"] = len(fg.reconstruction_trees())
    for rt in fg.reconstruction_trees():
        assert len(rt.helpers) == max(rt.size - 1, 0)


def test_helper_per_edge_invariant_over_long_run(benchmark):
    """Lemma 3: never more than one helper per G' edge, even after 300 moves."""

    def workload():
        fg = ForgivingGraph.from_graph(make_graph("power_law", 120, seed=7))
        churn_schedule(steps=300, delete_probability=0.55, seed=7).run(fg)
        return fg

    fg = run_once(benchmark, workload)
    seen_ports = set()
    for rt in fg.reconstruction_trees():
        for port in rt.helpers:
            assert port not in seen_ports
            seen_ports.add(port)
    benchmark.extra_info["helpers_total"] = len(seen_ports)
    benchmark.extra_info["alive"] = fg.num_alive
