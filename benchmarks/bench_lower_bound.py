"""E7 — Theorem 2: the degree/stretch trade-off lower bound on the star.

Benchmarks the hub-deletion repair on stars of growing size and records, for
the Forgiving Graph and the naive healers, where they sit relative to the
(1/2) log_{alpha-1}(n-1) floor and the log2(n) ceiling.
"""

import pytest

from repro.analysis import guarantee_report, lower_bound_stretch, stretch_bound
from repro.baselines import HealerSpec
from repro.generators import make_graph

from conftest import run_once


@pytest.mark.parametrize("n", [64, 256, 1024])
@pytest.mark.parametrize("healer_name", ["forgiving_graph", "cycle_heal", "surrogate_heal"])
def test_star_tradeoff_against_lower_bound(benchmark, n, healer_name):
    def workload():
        healer = HealerSpec(healer_name).build(make_graph("star", n))
        healer.delete(0)
        return guarantee_report(healer, max_sources=48, seed=0, healer_name=healer_name)

    report = run_once(benchmark, workload)
    alpha = max(report.degree_factor, 3.0)
    floor = lower_bound_stretch(n, alpha)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["healer"] = healer_name
    benchmark.extra_info["degree_factor"] = round(report.degree_factor, 3)
    benchmark.extra_info["stretch"] = round(report.stretch, 3)
    benchmark.extra_info["theorem2_floor"] = round(floor, 3)
    benchmark.extra_info["theorem1_ceiling"] = round(stretch_bound(n), 3)
    # Nobody with a bounded degree factor may beat the floor.
    if report.degree_factor <= 3.0:
        assert report.stretch >= floor - 1e-9
    # The Forgiving Graph additionally respects the Theorem 1 ceiling.
    if healer_name == "forgiving_graph":
        assert report.stretch <= stretch_bound(n) + 1e-9
        assert report.degree_factor <= 4.0 + 1e-9
