"""E8 — the worked examples of Figures 2 and 6-8 as micro-benchmarks.

Times the single-deletion repair of the Figure 2 star scenario and the
RT-merging cascade of Figures 7-8, asserting the structural outcomes the
figures illustrate.
"""

import math

import networkx as nx
import pytest

from repro import ForgivingGraph

from conftest import run_once


@pytest.mark.parametrize("neighbors", [8, 64, 512])
def test_figure2_star_replacement(benchmark, neighbors):
    def workload():
        fg = ForgivingGraph.from_edges([(0, i) for i in range(1, neighbors + 1)])
        fg.delete(0)
        return fg

    fg = run_once(benchmark, workload)
    (rt,) = fg.reconstruction_trees()
    benchmark.extra_info["neighbors"] = neighbors
    benchmark.extra_info["rt_depth"] = rt.depth
    benchmark.extra_info["expected_depth"] = math.ceil(math.log2(neighbors))
    assert rt.size == neighbors
    assert rt.depth == math.ceil(math.log2(neighbors))


@pytest.mark.parametrize("length", [32, 128, 512])
def test_figures7_8_merge_cascade(benchmark, length):
    """Delete every interior node of a path: each repair merges the two flanking RTs."""

    def workload():
        fg = ForgivingGraph.from_edges([(i, i + 1) for i in range(length)])
        for victim in range(1, length):
            fg.delete(victim)
        return fg

    fg = run_once(benchmark, workload)
    healed = fg.actual_graph()
    benchmark.extra_info["path_length"] = length
    benchmark.extra_info["final_rts"] = len(fg.reconstruction_trees())
    assert nx.is_connected(healed)
    assert fg.num_alive == 2
