"""E5 — Lemma 4 / Theorem 1.3: repair cost on the message-passing substrate.

Benchmarks the distributed simulator under attack and records message /
round / message-size statistics against the explicit O(d log n) and
O(log d log n) budgets.
"""

import math

import pytest

from repro.adversary import MaxDegreeDeletion, RandomDeletion
from repro.analysis.stats import summarize
from repro.distributed import DistributedForgivingGraph
from repro.generators import make_graph

from conftest import run_once


def attack(healer, strategy, deletions):
    for _ in range(deletions):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
    return healer


@pytest.mark.parametrize("n,deletions", [(100, 60), (200, 120)])
def test_repair_messages_within_budget(benchmark, n, deletions):
    def workload():
        healer = DistributedForgivingGraph.from_graph(make_graph("power_law", n, seed=5))
        return attack(healer, MaxDegreeDeletion(), deletions)

    healer = run_once(benchmark, workload)
    healer.verify_consistency()
    messages = summarize([r.messages for r in healer.cost_reports])
    rounds = summarize([r.rounds for r in healer.cost_reports])
    benchmark.extra_info["n"] = n
    benchmark.extra_info["deletions"] = len(healer.cost_reports)
    benchmark.extra_info["messages_mean"] = round(messages.mean, 1)
    benchmark.extra_info["messages_max"] = messages.maximum
    benchmark.extra_info["rounds_mean"] = round(rounds.mean, 1)
    benchmark.extra_info["rounds_max"] = rounds.maximum
    assert all(r.within_message_budget for r in healer.cost_reports)
    assert all(r.within_round_budget for r in healer.cost_reports)


@pytest.mark.parametrize("degree", [15, 63, 255])
def test_hub_repair_cost_scales_linearly_in_degree(benchmark, degree):
    """Messages for deleting a degree-d hub grow like d log n (not d^2)."""

    def workload():
        healer = DistributedForgivingGraph.from_edges([(0, i) for i in range(1, degree + 1)])
        return healer.delete(0)

    report = run_once(benchmark, workload)
    benchmark.extra_info["degree"] = degree
    benchmark.extra_info["messages"] = report.messages
    benchmark.extra_info["budget"] = round(report.message_budget, 1)
    benchmark.extra_info["messages_per_d_log_n"] = round(
        report.messages / (degree * math.log2(degree + 1)), 3
    )
    assert report.within_message_budget
    assert report.within_round_budget


@pytest.mark.parametrize("n", [100, 200])
def test_max_message_size_is_logarithmic(benchmark, n):
    def workload():
        healer = DistributedForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=6))
        return attack(healer, RandomDeletion(seed=0), n // 2)

    healer = run_once(benchmark, workload)
    word_bits = math.ceil(math.log2(healer.nodes_ever))
    benchmark.extra_info["max_message_bits"] = healer.network.metrics.max_message_bits
    benchmark.extra_info["word_bits"] = word_bits
    assert healer.network.metrics.max_message_bits <= 70 * word_bits


@pytest.mark.parametrize("n", [200, 400])
def test_incremental_accounting_attack(benchmark, n):
    """End-to-end attack on the delta-synced simulator (the O(delta) accounting path).

    The per-deletion accounting is delta-driven (edge-delta link sync +
    per-repair metrics window); the run must stay consistent with the engine
    and every report must carry per-repair (not cumulative) message maxima.
    """

    def workload():
        healer = DistributedForgivingGraph.from_graph(make_graph("power_law", n, seed=7))
        return attack(healer, MaxDegreeDeletion(), n // 2)

    healer = run_once(benchmark, workload)
    healer.verify_consistency()
    benchmark.extra_info["n"] = n
    benchmark.extra_info["deletions"] = len(healer.cost_reports)
    cumulative = healer.network.metrics.max_message_bits
    assert all(r.max_message_bits <= cumulative for r in healer.cost_reports)
    # Per-repair maxima genuinely vary: not every repair sends the run's
    # largest message (the pre-refactor accounting reported it for all).
    assert len({r.max_message_bits for r in healer.cost_reports}) > 1
