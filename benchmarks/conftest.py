"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one experiment of DESIGN.md's index
(E1–E10) under ``pytest-benchmark``: the benchmarked callable is the
experiment's core workload, and the experiment's headline numbers are
attached to ``benchmark.extra_info`` so that the saved benchmark JSON doubles
as the raw data behind EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``perf`` so tier-1 runs can keep them deselected."""
    for item in items:
        item.add_marker(pytest.mark.perf)


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single round/iteration (workloads are macro-level)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
