"""E3 — Theorem 1.1: degree increase stays a small constant under attack.

Benchmarks a max-degree deletion attack removing half the nodes of each
topology and records the worst degree factor: the paper claims a constant
(3x; the published mechanism's per-edge accounting allows 4x), and crucially
the factor must not grow with n.
"""

import pytest

from repro.experiments.config import AttackConfig
from repro.experiments.runner import run_attack
from repro.experiments.config import ExperimentConfig
from repro.generators import GraphSpec

from conftest import run_once


@pytest.mark.parametrize("topology", ["power_law", "erdos_renyi", "star"])
@pytest.mark.parametrize("n", [100, 300])
def test_degree_factor_under_max_degree_attack(benchmark, topology, n):
    config = ExperimentConfig(
        name="E3",
        graph=GraphSpec(topology=topology, n=n),
        attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
        healers=("forgiving_graph",),
        seed=3,
        stretch_sources=24,
    )

    outcome = run_once(benchmark, run_attack, config, "forgiving_graph")
    benchmark.extra_info["topology"] = topology
    benchmark.extra_info["n"] = n
    benchmark.extra_info["degree_factor"] = round(outcome.peak_degree_factor, 3)
    benchmark.extra_info["paper_bound"] = 3.0
    assert outcome.peak_degree_factor <= 4.0 + 1e-9
    assert outcome.final_report.connected
