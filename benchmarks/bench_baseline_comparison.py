"""E9 — Forgiving Graph vs Forgiving Tree vs naive healers under targeted attack.

Benchmarks every healer on the identical initial graph and max-degree attack
and records the (degree factor, stretch) point each one lands on: the shape
to reproduce is that only the Forgiving Graph keeps both coordinates small.
"""

import math

import pytest

from repro.experiments.config import AttackConfig, ExperimentConfig
from repro.experiments.runner import run_attack
from repro.generators import GraphSpec

from conftest import run_once

HEALERS = ["forgiving_graph", "forgiving_tree", "cycle_heal", "clique_heal", "surrogate_heal", "no_heal"]


@pytest.mark.parametrize("healer_name", HEALERS)
def test_healer_comparison_power_law(benchmark, healer_name):
    config = ExperimentConfig(
        name="E9",
        graph=GraphSpec(topology="power_law", n=200),
        attack=AttackConfig(strategy="max_degree", delete_fraction=0.5),
        healers=tuple(HEALERS),
        seed=9,
        stretch_sources=24,
    )
    graph = config.graph.build(seed=config.seed)
    outcome = run_once(benchmark, run_attack, config, healer_name, graph)
    benchmark.extra_info["healer"] = healer_name
    benchmark.extra_info["degree_factor"] = round(outcome.peak_degree_factor, 3)
    benchmark.extra_info["stretch"] = (
        round(outcome.peak_stretch, 3) if math.isfinite(outcome.peak_stretch) else "inf"
    )
    benchmark.extra_info["connected"] = outcome.final_report.connected

    if healer_name == "forgiving_graph":
        assert outcome.peak_degree_factor <= 4.0 + 1e-9
        assert outcome.peak_stretch <= outcome.final_report.stretch_bound + 1e-9
        assert outcome.final_report.connected
