"""Dense-int hot core benchmarks: the flat layout next to the object-dict twin.

The PR 7 layer keys everything inside the network by contiguous interned
ints — flat list-of-sets adjacency, packed-int link-source keys,
struct-of-arrays Table 1 records, one-pass struct-of-arrays delivery — with
the seed-era object-dict layout retained behind ``dense=False``.  These
benchmarks keep the two layouts visible side by side on identical
delete-heavy attacks, plus the sharded ``sweep_large_n`` path the scaling
runs use.  The pass/fail version (bit-identical cost reports, the >= 3x
end-to-end target against the seed-accounting twin, bytes/node) lives in
``scripts/perf_report.py`` (``large_n`` section).

Every item here carries the ``perf`` marker (added by conftest) and stays
out of the tier-1 run.
"""

import pytest

from repro.adversary.strategies import MaxDegreeDeletion
from repro.distributed import DistributedForgivingGraph
from repro.experiments import AttackConfig, sweep_large_n
from repro.generators import make_graph

from conftest import run_once

SIZES = [100, 400]


def run_attack(n: int, seed: int = 20090214, *, dense: bool):
    graph = make_graph("power_law", n, seed=seed)
    healer = DistributedForgivingGraph.from_graph(graph, dense=dense)
    strategy = MaxDegreeDeletion()
    for _ in range(n // 2):
        victim = strategy.choose_victim(healer)
        if victim is None or healer.num_alive <= 3:
            break
        healer.delete(victim)
    return healer


@pytest.mark.parametrize("n", SIZES)
def test_attack_dense_core(benchmark, n):
    """The dense-int fast path: interned flat topology + SoA records."""
    healer = run_once(benchmark, run_attack, n, dense=True)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(healer.cost_reports)


@pytest.mark.parametrize("n", SIZES)
def test_attack_object_dict_twin(benchmark, n):
    """The retained seed-era layout (``dense=False``), same attack."""
    healer = run_once(benchmark, run_attack, n, dense=False)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(healer.cost_reports)


def test_sharded_sweep(benchmark):
    """The ``sweep_large_n`` sharded path, serial (worker count never
    changes the rows, so the serial timing is the honest per-core cost)."""
    rows = run_once(
        benchmark,
        sweep_large_n,
        "bench-dense-shards",
        "erdos_renyi",
        1_200,
        4,
        attack=AttackConfig(strategy="random", delete_fraction=0.02, delete_probability=0.9),
        seed=20090214 % 1_000,
        stretch_sources=8,
        max_workers=None,
    )
    benchmark.extra_info["shards"] = len(rows)
    assert all(row["connected"] for row in rows)
