"""E1 / E2 — half-full tree benchmarks (Lemmas 1-2, Figures 3 and 5).

Times haft construction, Strip and Merge at increasing sizes and records the
structural facts of Lemma 1 (depth = ceil(log2 l), primary roots = popcount)
in the benchmark metadata.
"""

import math

import pytest

from repro.core.haft import build_haft, depth, is_haft, merge, primary_roots, strip

from conftest import run_once


@pytest.mark.parametrize("size", [64, 1024, 4096, 16384])
def test_build_haft_scales(benchmark, size):
    root = benchmark(build_haft, list(range(size)))
    benchmark.extra_info["leaves"] = size
    benchmark.extra_info["depth"] = depth(root)
    benchmark.extra_info["depth_bound"] = math.ceil(math.log2(size))
    assert depth(root) == math.ceil(math.log2(size))


@pytest.mark.parametrize("size", [1023, 4095, 16383])
def test_strip_returns_popcount_pieces(benchmark, size):
    def workload():
        return strip(build_haft(list(range(size))))

    pieces = run_once(benchmark, workload)
    benchmark.extra_info["pieces"] = len(pieces)
    benchmark.extra_info["popcount"] = bin(size).count("1")
    assert len(pieces) == bin(size).count("1")


@pytest.mark.parametrize("sizes", [(100, 28), (513, 511), (1000, 1000, 1000)])
def test_merge_is_binary_addition(benchmark, sizes):
    def workload():
        offset = 0
        hafts = []
        for size in sizes:
            hafts.append(build_haft(list(range(offset, offset + size))))
            offset += size
        return merge(hafts)

    merged = run_once(benchmark, workload)
    total = sum(sizes)
    benchmark.extra_info["total_leaves"] = total
    benchmark.extra_info["primary_roots"] = len(primary_roots(merged))
    benchmark.extra_info["popcount"] = bin(total).count("1")
    assert is_haft(merged)
    assert merged.num_leaves == total
    assert len(primary_roots(merged)) == bin(total).count("1")
