"""Hot-path benchmarks: incremental healed-graph upkeep + CSR stretch engine.

Times the two paths this repo's perf subsystem optimises — delete-heavy churn
(incremental ``G`` maintenance in the engine) and stretch measurement (bitset
BFS over CSR snapshots) — at n in {100, 1000, 5000}.  The seed-equivalent
baselines are timed by ``scripts/perf_report.py``, which regenerates
``BENCH_perf.json`` standalone; this module keeps the fast paths visible to
``pytest benchmarks/ --benchmark-only`` alongside the experiment benchmarks.

Every item here carries the ``perf`` marker (added by conftest) and stays out
of the tier-1 run.
"""

import pytest

from repro import AttackSession, ForgivingGraph
from repro.adversary.schedule import churn_schedule
from repro.adversary.strategies import RandomDeletion
from repro.analysis import stretch_report
from repro.generators import make_graph

from conftest import run_once

SIZES = [100, 1000, 5000]


def churned_engine(n: int, seed: int = 20090214) -> ForgivingGraph:
    fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=seed))
    strategy = RandomDeletion(seed=seed)
    for _ in range(n // 4):
        victim = strategy.choose_victim(fg)
        if victim is None or fg.num_alive <= 2:
            break
        fg.delete(victim)
    return fg


@pytest.mark.parametrize("n", SIZES)
def test_stretch_report_fast_path(benchmark, n):
    """CSR/bitset stretch measurement on a churned engine state."""
    fg = churned_engine(n)
    max_sources = None if n <= 1000 else 128
    report = run_once(benchmark, stretch_report, fg, max_sources=max_sources, seed=0)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["pairs"] = report.pairs_measured
    benchmark.extra_info["max_stretch"] = report.max_stretch
    assert report.within_bound


@pytest.mark.parametrize("n", SIZES)
def test_delete_heavy_churn_sweep(benchmark, n):
    """End-to-end churn with periodic Theorem 1 measurement (the sweep shape).

    One :class:`repro.engine.AttackSession` owns the loop: the schedule
    streams moves, the session measures on its automatic coarse cadence with
    a reused ``MeasurementSession``.
    """
    steps = min(n, 1000)

    def workload():
        fg = ForgivingGraph.from_graph(make_graph("erdos_renyi", n, seed=1))
        schedule = churn_schedule(steps=steps, delete_probability=0.8, seed=1)
        session = AttackSession(fg, schedule, stretch_sources=32, seed=1)
        return session.run().final_report

    final = run_once(benchmark, workload)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["steps"] = steps
    benchmark.extra_info["degree_factor"] = round(final.degree_factor, 3)
    benchmark.extra_info["connected"] = final.connected
    assert final.connected
