"""E4 — Theorem 1.2: stretch stays below log2(n) while n grows.

Benchmarks the attack + stretch measurement pipeline and records the worst
observed stretch against the log2(n) ceiling for growing graphs: the shape to
reproduce is "stretch tracks log n, not n".
"""

import math

import pytest

from repro.experiments.config import AttackConfig, ExperimentConfig
from repro.experiments.runner import run_attack
from repro.generators import GraphSpec

from conftest import run_once


@pytest.mark.parametrize("n", [100, 200, 400])
@pytest.mark.parametrize("strategy", ["max_degree", "cut"])
def test_stretch_under_attack(benchmark, n, strategy):
    config = ExperimentConfig(
        name="E4",
        graph=GraphSpec(topology="erdos_renyi", n=n),
        attack=AttackConfig(strategy=strategy, delete_fraction=0.5),
        healers=("forgiving_graph",),
        seed=4,
        stretch_sources=24,
    )
    outcome = run_once(benchmark, run_attack, config, "forgiving_graph")
    bound = math.log2(outcome.final_report.n_ever)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["stretch"] = round(outcome.peak_stretch, 3)
    benchmark.extra_info["log2_n_bound"] = round(bound, 3)
    assert outcome.peak_stretch <= bound + 1e-9


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_star_hub_deletion_stretch_scaling(benchmark, n):
    """The adversary's best case (Theorem 2 topology): stretch grows like log n / 2."""
    from repro import ForgivingGraph
    from repro.analysis import stretch_report
    from repro.generators import make_graph

    def workload():
        fg = ForgivingGraph.from_graph(make_graph("star", n))
        fg.delete(0)
        return stretch_report(fg, max_sources=32, seed=0)

    report = run_once(benchmark, workload)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["stretch"] = round(report.max_stretch, 3)
    benchmark.extra_info["log2_n"] = round(math.log2(n), 3)
    assert report.max_stretch <= math.log2(n) + 1e-9
    assert report.max_stretch >= 0.4 * math.log2(n)  # genuinely Theta(log n), not O(1)
