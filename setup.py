"""Setup shim so that legacy installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work in offline environments without the
``wheel`` package; all metadata lives in pyproject.toml."""
from setuptools import setup

setup()
